"""AES-128 victim circuit: a bandwidth-limit case study.

The RSA attack works because the secret modulates the circuit's
*long-run average* power (multiply-module duty cycle ∝ Hamming
weight).  AES is the opposite regime: a pipelined AES-128 engine at
300 MHz finishes an encryption in tens of nanoseconds, and its
key-dependent switching averages out over any 35 ms INA226 window —
the per-encryption energy differences between keys sit orders of
magnitude below the channel's resolution.

This module provides a functionally correct AES-128 (validated against
the FIPS-197 vectors) with a standard Hamming-distance power model, so
the negative result can be *measured* rather than asserted: the
AES-vs-hwmon bench shows TVLA failing to distinguish keys through the
current channel, delimiting what AmpereBleed can and cannot reach.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.fpga.fabric import CircuitSpec
from repro.soc.workload import ActivityTimeline
from repro.utils.rng import RngLike, spawn
from repro.utils.validation import require_int_in_range, require_positive

# --------------------------------------------------------------- AES core

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67,
    0x2B, 0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59,
    0x47, 0xF0, 0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7,
    0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1,
    0x71, 0xD8, 0x31, 0x15, 0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05,
    0x9A, 0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83,
    0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0, 0x52, 0x3B, 0xD6, 0xB3, 0x29,
    0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B,
    0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF, 0xD0, 0xEF, 0xAA,
    0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C,
    0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5, 0xBC,
    0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19,
    0x73, 0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE,
    0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49,
    0x06, 0x24, 0x5C, 0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
    0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4,
    0xEA, 0x65, 0x7A, 0xAE, 0x08, 0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6,
    0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A, 0x70,
    0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E, 0x61, 0x35, 0x57, 0xB9,
    0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E,
    0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF, 0x8C, 0xA1,
    0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0,
    0x54, 0xBB, 0x16,
]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def expand_key(key: bytes) -> List[List[int]]:
    """AES-128 key schedule: 11 round keys of 16 bytes each."""
    if len(key) != 16:
        raise ValueError("AES-128 needs a 16-byte key")
    words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
    for round_index in range(10):
        previous = words[-1]
        rotated = previous[1:] + previous[:1]
        substituted = [_SBOX[b] for b in rotated]
        substituted[0] ^= _RCON[round_index]
        for _ in range(4):
            base = words[-4]
            new_word = [a ^ b for a, b in zip(base, substituted)]
            words.append(new_word)
            substituted = new_word
    return [sum(words[4 * r:4 * r + 4], []) for r in range(11)]


def _sub_bytes(state: List[int]) -> List[int]:
    return [_SBOX[b] for b in state]


def _shift_rows(state: List[int]) -> List[int]:
    # Column-major state layout (FIPS-197): state[r + 4c].
    out = list(state)
    for row in range(1, 4):
        values = [state[row + 4 * col] for col in range(4)]
        values = values[row:] + values[:row]
        for col in range(4):
            out[row + 4 * col] = values[col]
    return out


def _mix_columns(state: List[int]) -> List[int]:
    out = [0] * 16
    for col in range(4):
        a = state[4 * col:4 * col + 4]
        out[4 * col + 0] = _xtime(a[0]) ^ _xtime(a[1]) ^ a[1] ^ a[2] ^ a[3]
        out[4 * col + 1] = a[0] ^ _xtime(a[1]) ^ _xtime(a[2]) ^ a[2] ^ a[3]
        out[4 * col + 2] = a[0] ^ a[1] ^ _xtime(a[2]) ^ _xtime(a[3]) ^ a[3]
        out[4 * col + 3] = _xtime(a[0]) ^ a[0] ^ a[1] ^ a[2] ^ _xtime(a[3])
    return out


def _add_round_key(state: List[int], round_key: List[int]) -> List[int]:
    return [a ^ b for a, b in zip(state, round_key)]


def _hamming_distance(a: List[int], b: List[int]) -> int:
    return sum(bin(x ^ y).count("1") for x, y in zip(a, b))


def aes128_encrypt_block(
    plaintext: bytes, key: bytes
) -> Tuple[bytes, List[int]]:
    """Encrypt one block; also return per-round register Hamming
    distances (the standard power-model observable)."""
    if len(plaintext) != 16:
        raise ValueError("AES block is 16 bytes")
    round_keys = expand_key(key)
    state = _add_round_key(list(plaintext), round_keys[0])
    distances: List[int] = []
    for round_index in range(1, 10):
        previous = state
        state = _sub_bytes(state)
        state = _shift_rows(state)
        state = _mix_columns(state)
        state = _add_round_key(state, round_keys[round_index])
        distances.append(_hamming_distance(previous, state))
    previous = state
    state = _sub_bytes(state)
    state = _shift_rows(state)
    state = _add_round_key(state, round_keys[10])
    distances.append(_hamming_distance(previous, state))
    return bytes(state), distances


# ------------------------------------------------------------- the victim

class AesCircuit:
    """A pipelined AES-128 engine as a power-producing victim.

    Power model: a fixed engine draw plus a per-encryption energy
    proportional to the summed round Hamming distances — the standard
    register-switching model.  At ``throughput`` blocks/s the
    key-dependent part contributes microwatts of *average* power,
    which is the point of the negative-result bench.

    Args:
        key: the 16-byte secret.
        clock_hz: engine clock.
        throughput: encryptions per second while running.
        p_engine: key-independent dynamic power of the busy engine.
        energy_per_hd: joules per bit of register Hamming distance.
        p_idle: deployed-but-idle leakage.
    """

    def __init__(
        self,
        key: bytes,
        clock_hz: float = 300e6,
        throughput: float = 1e6,
        p_engine: float = 0.180,
        energy_per_hd: float = 2.0e-12,
        p_idle: float = 0.012,
    ):
        if len(key) != 16:
            raise ValueError("AES-128 needs a 16-byte key")
        self.key = bytes(key)
        self.clock_hz = require_positive(clock_hz, "clock_hz")
        self.throughput = require_positive(throughput, "throughput")
        self.p_engine = require_positive(p_engine, "p_engine")
        self.energy_per_hd = require_positive(energy_per_hd, "energy_per_hd")
        self.p_idle = require_positive(p_idle, "p_idle")

    def encrypt(self, plaintext: bytes) -> bytes:
        """Run the datapath (FIPS-197-correct)."""
        ciphertext, _ = aes128_encrypt_block(plaintext, self.key)
        return ciphertext

    def mean_switching_bits(
        self, n_blocks: int = 256, seed: RngLike = None
    ) -> float:
        """Mean summed round Hamming distance over random plaintexts."""
        n_blocks = require_int_in_range(n_blocks, 1, 1_000_000, "n_blocks")
        rng = spawn(seed, "aes-plaintexts")
        total = 0
        for _ in range(n_blocks):
            plaintext = bytes(
                int(b) for b in rng.integers(0, 256, size=16)
            )
            _, distances = aes128_encrypt_block(plaintext, self.key)
            total += sum(distances)
        return total / n_blocks

    def mean_power(self, seed: RngLike = None) -> float:
        """Long-run average power while encrypting a random stream.

        ``p_idle + p_engine + throughput * E_hd * mean_bits`` — the
        key-dependent term is the last one, and it is tiny: with
        ~700 switched bits per block at 2 pJ/bit and 1e6 blocks/s it
        totals ~1.4 mW, of which the *key-dependent spread* is only a
        few bits' worth (microwatts).
        """
        bits = self.mean_switching_bits(seed=seed)
        return (
            self.p_idle
            + self.p_engine
            + self.throughput * self.energy_per_hd * bits
        )

    def timeline(self, seed: RngLike = None) -> ActivityTimeline:
        """Constant-power timeline at the sensor's time scale.

        Per-block power fluctuations live at microsecond scale; a 35 ms
        conversion integrates ~35 000 encryptions, so the rail sees the
        long-run mean.
        """
        from repro.soc.workload import ConstantActivity

        return ConstantActivity(self.mean_power(seed=seed))

    def circuit_spec(self) -> CircuitSpec:
        """Fabric resources of a round-pipelined AES-128."""
        return CircuitSpec(
            name="aes-128",
            utilization={"lut": 4_200, "ff": 2_900, "bram": 8},
            activity={"lut": 0.5, "ff": 0.5, "bram": 0.3},
        )

    def __repr__(self) -> str:
        return (
            f"AesCircuit(clock={self.clock_hz / 1e6:.0f} MHz, "
            f"{self.throughput:.2g} blocks/s)"
        )
