"""Multi-tenant FPGA with per-tenant PDN isolation (ISO-TENANT style).

The paper's introduction notes that recent defenses give each tenant an
*isolated* power delivery network (ISO-TENANT, FPGA'24): per-tenant
point-of-load regulation means one tenant's switching no longer
modulates the voltage another tenant's crafted sensor sees — killing
the co-residence attacks of prior work.

AmpereBleed is indifferent to this defense, for a structural reason:
the per-tenant regulators are *fed from the same upstream rail that
the board's INA226 monitors*.  Regulators conserve power (minus
efficiency), so the upstream current still aggregates every tenant's
activity.  This module builds that topology so the claim can be
measured: a victim in tenant A, an RO sensor in tenant B, and the
board-level current sensor upstream of both.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.fpga.pdn import VoltageRegulator
from repro.soc.rails import PowerRail
from repro.soc.workload import ActivityTimeline
from repro.utils.validation import require_in_range, require_int_in_range


class _TenantAggregate(ActivityTimeline):
    """Upstream power demand of all tenant sub-rails (lazy view).

    Evaluated at call time, so workloads attached to tenant rails after
    construction are included — the upstream rail always sees the live
    tenant state, like a real regulator tree.
    """

    def __init__(self, tenants: List[PowerRail], efficiency: float):
        self._tenants = tenants
        self._efficiency = efficiency

    def power_at(self, t: np.ndarray) -> np.ndarray:
        t = np.atleast_1d(np.asarray(t, dtype=np.float64))
        total = np.zeros_like(t)
        for tenant in self._tenants:
            total = total + tenant.timeline().power_at(t)
        return total / self._efficiency

    def energy_between(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        t0 = np.atleast_1d(np.asarray(t0, dtype=np.float64))
        t1 = np.atleast_1d(np.asarray(t1, dtype=np.float64))
        total = np.zeros_like(t0)
        for tenant in self._tenants:
            total = total + tenant.timeline().energy_between(t0, t1)
        return total / self._efficiency


class IsolatedTenantPdn:
    """Per-tenant regulated sub-rails under one monitored upstream rail.

    Args:
        n_tenants: number of isolated tenant slots.
        efficiency: conversion efficiency of the per-tenant regulators
            (their losses also flow through the upstream sensor).
        tenant_regulator: regulator template for tenant sub-rails
            (tight ISO-TENANT-style regulation by default).
    """

    def __init__(
        self,
        n_tenants: int = 2,
        efficiency: float = 0.93,
        tenant_regulator: Optional[VoltageRegulator] = None,
    ):
        require_int_in_range(n_tenants, 1, 64, "n_tenants")
        require_in_range(efficiency, 0.5, 1.0, "efficiency")
        self.efficiency = float(efficiency)
        template = (
            tenant_regulator
            if tenant_regulator is not None
            else VoltageRegulator(
                v_set=0.8505,
                band=(0.825, 0.876),
                r_loadline=0.05e-3,  # ISO-TENANT regulates hard
                k_quadratic=0.0,
            )
        )
        self.tenants: List[PowerRail] = [
            PowerRail(
                f"TENANT{i}",
                regulator=VoltageRegulator(
                    v_set=template.v_set,
                    band=template.band,
                    r_loadline=template.r_loadline,
                    k_quadratic=template.k_quadratic,
                ),
                idle_power=0.05,
            )
            for i in range(n_tenants)
        ]

    def tenant(self, index: int) -> PowerRail:
        """One tenant's isolated sub-rail."""
        if not (0 <= index < len(self.tenants)):
            raise IndexError(
                f"tenant {index} outside 0..{len(self.tenants) - 1}"
            )
        return self.tenants[index]

    def upstream_demand(self) -> ActivityTimeline:
        """The aggregated power the upstream (monitored) rail supplies."""
        return _TenantAggregate(self.tenants, self.efficiency)

    def install(self, soc, name: str = "tenant-pdn") -> None:
        """Route the tenant tree through a SoC's FPGA rail.

        After this, the board's ``ina226_u79`` sees the sum of all
        tenants (scaled by regulator efficiency), while each tenant's
        *voltage* is set only by its own sub-regulator — the exact
        situation the isolation defense creates.
        """
        soc.replace_workload("fpga", name, self.upstream_demand())

    def uninstall(self, soc, name: str = "tenant-pdn") -> None:
        """Remove the tenant tree from the SoC."""
        soc.detach_workload("fpga", name)

    def tenant_voltage(
        self, index: int, t0: np.ndarray, t1: np.ndarray
    ) -> np.ndarray:
        """Window-averaged voltage on one tenant's isolated sub-rail.

        This is what a crafted sensor *inside* that tenant can observe;
        it depends only on the tenant's own load.
        """
        _, voltage = self.tenant(index).window_state(t0, t1)
        return voltage
