"""FPGA substrate: fabric, power model, PDN, and victim circuits."""

from repro.fpga.aes import AesCircuit, aes128_encrypt_block, expand_key
from repro.fpga.bitstream import (
    Bitstream,
    BitstreamError,
    FpgaConfigurator,
    ProgrammingRecord,
    SealedSecret,
)
from repro.fpga.fabric import (
    RESOURCE_TYPES,
    CircuitSpec,
    Fabric,
    Placement,
    PlacementError,
    Region,
    Shard,
)
from repro.fpga.pdn import (
    VoltageRegulator,
    inductive_drop,
    resistive_drop,
    transient_vdrop,
    versal_regulator,
    zynq_us_plus_regulator,
)
from repro.fpga.power import (
    DEFAULT_RESOURCE_PROFILES,
    FabricPowerModel,
    ResourcePowerProfile,
    dynamic_power,
    static_power,
)
from repro.fpga.power_virus import PowerVirusArray
from repro.fpga.ring_osc import RingOscillator, RoSensorBank
from repro.fpga.multi_tenant import IsolatedTenantPdn
from repro.fpga.rsa import RsaCircuit
from repro.fpga.tdc import TdcSensor
from repro.fpga.workloads import (
    WORKLOAD_CLASSES,
    WorkloadInstance,
    generate_dataset,
    generate_workload,
)

__all__ = [
    "AesCircuit",
    "aes128_encrypt_block",
    "expand_key",
    "WORKLOAD_CLASSES",
    "WorkloadInstance",
    "generate_dataset",
    "generate_workload",
    "IsolatedTenantPdn",
    "Bitstream",
    "BitstreamError",
    "FpgaConfigurator",
    "ProgrammingRecord",
    "SealedSecret",
    "TdcSensor",
    "RESOURCE_TYPES",
    "CircuitSpec",
    "Fabric",
    "Placement",
    "PlacementError",
    "Region",
    "Shard",
    "VoltageRegulator",
    "inductive_drop",
    "resistive_drop",
    "transient_vdrop",
    "versal_regulator",
    "zynq_us_plus_regulator",
    "DEFAULT_RESOURCE_PROFILES",
    "FabricPowerModel",
    "ResourcePowerProfile",
    "dynamic_power",
    "static_power",
    "PowerVirusArray",
    "RingOscillator",
    "RoSensorBank",
    "RsaCircuit",
]
