"""Bitstreams and FPGA configuration, including IP encryption semantics.

Two of the paper's victims ship as *encrypted* designs:

* the Xilinx DPU "encrypts its hardware description language (HDL)
  files at the source code level, following IEEE-1735-2014 V2" — so
  even the system owner cannot inspect how inference is scheduled;
* the RSA engine "embeds the key within the encrypted bitstream.  Once
  the circuit is deployed on an FPGA, the private key remains
  inaccessible, even to privileged users."

This module models that boundary: a :class:`Bitstream` bundles circuits
(and optional sealed secrets) and can be encrypted; once encrypted, the
payload is only reachable through :meth:`FpgaConfigurator.program`,
which instantiates the circuits onto the fabric without ever exposing
the sealed data.  The point is architectural honesty, not
cryptographic strength — the side channel defeats the seal *without*
breaking it, which is the paper's story.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.fpga.fabric import CircuitSpec, Fabric, Placement


class BitstreamError(RuntimeError):
    """Raised for malformed, tampered or unauthorized bitstream use."""


@dataclass(frozen=True)
class SealedSecret:
    """A design secret carried inside an encrypted bitstream.

    Only a digest is ever observable; the value itself is reachable
    solely by the configuration engine (and, in this simulation, by
    the circuit factory that needs it at programming time).
    """

    name: str
    _value: int

    @property
    def digest(self) -> str:
        """A commitment to the secret — safe to log or compare."""
        data = f"{self.name}:{self._value}".encode()
        return hashlib.sha256(data).hexdigest()[:16]

    def reveal_for_configuration(self) -> int:
        """Hand the value to the configuration engine.

        Real hardware decrypts inside the configuration logic; the
        simulator mirrors that by confining calls to
        :meth:`FpgaConfigurator.program`.
        """
        return self._value

    def __repr__(self) -> str:
        return f"SealedSecret({self.name!r}, digest={self.digest})"


@dataclass
class Bitstream:
    """A deployable FPGA image: circuits plus optional sealed secrets.

    Attributes:
        name: image name (shows up in logs and placement records).
        circuits: the circuit specs instantiated when programmed.
        secrets: design secrets sealed into the image.
        encrypted: True once :meth:`encrypt` ran; encrypted images hide
            their contents from inspection.
    """

    name: str
    circuits: List[CircuitSpec] = field(default_factory=list)
    secrets: Dict[str, SealedSecret] = field(default_factory=dict)
    encrypted: bool = False
    #: IEEE-1735 version tag used by the encrypting toolchain.
    encryption_standard: str = "IEEE-1735-2014-V2"

    def add_circuit(self, circuit: CircuitSpec) -> "Bitstream":
        """Add a circuit (rejected after encryption)."""
        self._require_plaintext("add circuits to")
        self.circuits.append(circuit)
        return self

    def seal_secret(self, name: str, value: int) -> "Bitstream":
        """Seal a design secret (e.g. an RSA exponent) into the image."""
        self._require_plaintext("seal secrets into")
        if name in self.secrets:
            raise BitstreamError(f"secret {name!r} already sealed")
        self.secrets[name] = SealedSecret(name, value)
        return self

    def encrypt(self) -> "Bitstream":
        """Encrypt the image: contents become uninspectable."""
        if self.encrypted:
            raise BitstreamError(f"bitstream {self.name!r} already encrypted")
        if not self.circuits:
            raise BitstreamError("refusing to encrypt an empty bitstream")
        self.encrypted = True
        return self

    def manifest(self) -> Dict:
        """What an observer can learn by inspecting the image file.

        For plaintext images: full circuit inventory.  For encrypted
        ones: only the name, standard, and secret digests — exactly the
        opacity the DPU/RSA victims present to the attacker.
        """
        if not self.encrypted:
            return {
                "name": self.name,
                "encrypted": False,
                "circuits": [
                    {
                        "name": circuit.name,
                        "utilization": dict(circuit.utilization),
                    }
                    for circuit in self.circuits
                ],
                "secrets": sorted(self.secrets),
            }
        return {
            "name": self.name,
            "encrypted": True,
            "standard": self.encryption_standard,
            "secret_digests": {
                name: secret.digest for name, secret in self.secrets.items()
            },
        }

    def manifest_json(self) -> str:
        """The manifest as stable JSON (for tooling/tests)."""
        return json.dumps(self.manifest(), sort_keys=True)

    def _require_plaintext(self, action: str) -> None:
        if self.encrypted:
            raise BitstreamError(
                f"cannot {action} an encrypted bitstream ({self.name!r})"
            )


@dataclass(frozen=True)
class ProgrammingRecord:
    """Outcome of one configuration: what landed where."""

    bitstream: str
    encrypted: bool
    placements: Tuple[Placement, ...]


class FpgaConfigurator:
    """Programs bitstreams onto a fabric (the configuration engine).

    The configurator is the *only* component allowed to open sealed
    secrets, and it never returns them — it passes them to circuit
    factories and discards them, like the on-chip decryptor does.
    """

    def __init__(self, fabric: Fabric):
        if not isinstance(fabric, Fabric):
            raise TypeError("fabric must be a repro.fpga.Fabric")
        self.fabric = fabric
        self._programmed: Dict[str, ProgrammingRecord] = {}

    def program(self, bitstream: Bitstream) -> ProgrammingRecord:
        """Instantiate every circuit of ``bitstream`` onto the fabric."""
        if bitstream.name in self._programmed:
            raise BitstreamError(
                f"bitstream {bitstream.name!r} is already programmed"
            )
        if not bitstream.circuits:
            raise BitstreamError(
                f"bitstream {bitstream.name!r} carries no circuits"
            )
        placements: List[Placement] = []
        deployed_names: List[str] = []
        try:
            for circuit in bitstream.circuits:
                placements.append(self.fabric.deploy(circuit))
                deployed_names.append(circuit.name)
        except Exception:
            for name in deployed_names:
                self.fabric.undeploy(name)
            raise
        record = ProgrammingRecord(
            bitstream=bitstream.name,
            encrypted=bitstream.encrypted,
            placements=tuple(placements),
        )
        self._programmed[bitstream.name] = record
        return record

    def unprogram(self, name: str) -> None:
        """Remove a previously programmed bitstream's circuits."""
        record = self._programmed.pop(name, None)
        if record is None:
            raise BitstreamError(f"bitstream {name!r} is not programmed")
        for placement in record.placements:
            self.fabric.undeploy(placement.circuit.name)

    def programmed(self) -> List[ProgrammingRecord]:
        """Programming records, in order."""
        return list(self._programmed.values())

    def readback(self, name: str) -> Dict:
        """Attempt configuration readback.

        Encrypted images refuse readback — the mechanism that protects
        the RSA key from even privileged software (and that AmpereBleed
        sidesteps entirely via the current side channel).
        """
        record = self._programmed.get(name)
        if record is None:
            raise BitstreamError(f"bitstream {name!r} is not programmed")
        if record.encrypted:
            raise BitstreamError(
                f"readback of encrypted bitstream {name!r} is blocked "
                f"(IEEE-1735 protected)"
            )
        return {
            "bitstream": record.bitstream,
            "circuits": [
                placement.circuit.name for placement in record.placements
            ],
        }
