"""FPGA dynamic and static power models.

The paper's foundation (Eq. 2) is that dynamic power is the product of
the supply voltage and the summed currents drawn by the fabric's
computing elements::

    P_dyn = V_dd * sum I(LE, RAM, DSP, Clocks, ...)

At the element level the standard CMOS model applies: each toggling node
dissipates ``P = alpha * C_eff * V^2 * f`` where ``alpha`` is the toggle
(activity) rate, ``C_eff`` the effective switched capacitance, ``V`` the
core voltage and ``f`` the clock frequency.  This module provides that
arithmetic plus per-resource effective capacitances calibrated to
UltraScale+ -class fabric, so circuits can be costed from their resource
utilization and activity factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.utils.validation import require_non_negative, require_positive


def dynamic_power(
    alpha: float, c_eff_farads: float, voltage: float, frequency_hz: float
) -> float:
    """Dynamic switching power ``alpha * C * V^2 * f`` in watts."""
    require_non_negative(alpha, "alpha")
    require_non_negative(c_eff_farads, "c_eff_farads")
    require_positive(voltage, "voltage")
    require_non_negative(frequency_hz, "frequency_hz")
    return alpha * c_eff_farads * voltage * voltage * frequency_hz


def static_power(leakage_current: float, voltage: float) -> float:
    """Static (leakage) power ``I_leak * V`` in watts."""
    require_non_negative(leakage_current, "leakage_current")
    require_positive(voltage, "voltage")
    return leakage_current * voltage


@dataclass(frozen=True)
class ResourcePowerProfile:
    """Per-element effective capacitance and leakage for one resource type.

    Attributes:
        c_eff_farads: effective switched capacitance per element per
            toggle (includes local routing).
        leakage_amps: per-element leakage current when configured.
    """

    c_eff_farads: float
    leakage_amps: float


#: Effective per-element parameters for a 16 nm UltraScale+-class fabric.
#: These are calibrated so that (a) a full-board power virus (~160 k
#: high-activity LUT/FF pairs at 300 MHz, 0.85 V) draws a few amperes on
#: VCCINT, matching Fig 2's ~6.4 A dynamic swing, and (b) the static
#: floor of a fully-deployed-but-idle design is several hundred mA,
#: matching Fig 2's non-zero current at activation level 0.
DEFAULT_RESOURCE_PROFILES: Dict[str, ResourcePowerProfile] = {
    "lut": ResourcePowerProfile(c_eff_farads=9.0e-15, leakage_amps=3.0e-6),
    "ff": ResourcePowerProfile(c_eff_farads=4.0e-15, leakage_amps=1.0e-6),
    "dsp": ResourcePowerProfile(c_eff_farads=6.0e-13, leakage_amps=4.0e-5),
    "bram": ResourcePowerProfile(c_eff_farads=9.0e-13, leakage_amps=8.0e-5),
    "clock": ResourcePowerProfile(c_eff_farads=2.0e-14, leakage_amps=0.0),
}


class FabricPowerModel:
    """Costs a circuit's power from resource counts and activity factors.

    Args:
        voltage: core (VCCINT) voltage in volts.
        frequency_hz: fabric clock in hertz.
        profiles: per-resource-type power profiles; defaults to
            :data:`DEFAULT_RESOURCE_PROFILES`.
    """

    def __init__(
        self,
        voltage: float = 0.85,
        frequency_hz: float = 300e6,
        profiles: Mapping[str, ResourcePowerProfile] = None,
    ):
        self.voltage = require_positive(voltage, "voltage")
        self.frequency_hz = require_non_negative(frequency_hz, "frequency_hz")
        self.profiles: Dict[str, ResourcePowerProfile] = dict(
            profiles if profiles is not None else DEFAULT_RESOURCE_PROFILES
        )

    def element_dynamic_power(self, resource: str, alpha: float) -> float:
        """Dynamic power of a single element of ``resource`` type."""
        profile = self._profile(resource)
        return dynamic_power(
            alpha, profile.c_eff_farads, self.voltage, self.frequency_hz
        )

    def element_static_power(self, resource: str) -> float:
        """Leakage power of a single configured element."""
        profile = self._profile(resource)
        return static_power(profile.leakage_amps, self.voltage)

    def circuit_dynamic_power(
        self, utilization: Mapping[str, int], activity: Mapping[str, float]
    ) -> float:
        """Total dynamic power of a circuit.

        Args:
            utilization: resource type -> element count.
            activity: resource type -> toggle rate alpha (missing types
                default to 0, i.e. configured but idle).
        """
        total = 0.0
        for resource, count in utilization.items():
            if count < 0:
                raise ValueError(f"negative count for {resource!r}: {count}")
            alpha = float(activity.get(resource, 0.0))
            total += count * self.element_dynamic_power(resource, alpha)
        return total

    def circuit_static_power(self, utilization: Mapping[str, int]) -> float:
        """Total leakage power of a configured circuit."""
        total = 0.0
        for resource, count in utilization.items():
            if count < 0:
                raise ValueError(f"negative count for {resource!r}: {count}")
            total += count * self.element_static_power(resource)
        return total

    def _profile(self, resource: str) -> ResourcePowerProfile:
        try:
            return self.profiles[resource]
        except KeyError:
            available = ", ".join(sorted(self.profiles))
            raise KeyError(
                f"unknown resource type {resource!r}; available: {available}"
            ) from None
