"""FPGA fabric: resource pools, placement regions, circuit deployment.

The fabric is modeled as a grid of clock regions, each holding a share
of the device's LUT / flip-flop / DSP / BRAM pools.  Circuits declare a
resource utilization and are placed into regions; the fabric enforces
capacity and tracks what is deployed.  Placement matters for two
experiments: the power-virus array is split into groups that are
*evenly distributed* across the board, and the RO baseline circuits are
likewise spread out "to average dependence on spatial proximity to
activated power virus instances" (paper §IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.boards.catalog import BoardSpec, get_board

RESOURCE_TYPES = ("lut", "ff", "dsp", "bram")


@dataclass(frozen=True)
class CircuitSpec:
    """A synthesizable circuit: name, resources, and toggle activity.

    Attributes:
        name: unique identifier within a fabric.
        utilization: resource type -> element count.
        activity: resource type -> toggle rate alpha in [0, 1] when the
            circuit is running (idle circuits still leak).
    """

    name: str
    utilization: Mapping[str, int]
    activity: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self):
        for resource, count in self.utilization.items():
            if resource not in RESOURCE_TYPES:
                raise ValueError(
                    f"unknown resource {resource!r}; "
                    f"expected one of {RESOURCE_TYPES}"
                )
            if count < 0:
                raise ValueError(f"negative {resource} count: {count}")
        for resource, alpha in self.activity.items():
            if not (0.0 <= alpha <= 1.0):
                raise ValueError(
                    f"activity for {resource!r} must be in [0, 1], got {alpha}"
                )


@dataclass
class Region:
    """One clock region with its local resource capacity and usage."""

    row: int
    col: int
    capacity: Dict[str, int]
    used: Dict[str, int] = field(default_factory=dict)

    def free(self, resource: str) -> int:
        """Remaining elements of ``resource`` in this region."""
        return self.capacity.get(resource, 0) - self.used.get(resource, 0)

    def allocate(self, utilization: Mapping[str, int]) -> None:
        """Reserve resources, raising :class:`PlacementError` on overflow."""
        for resource, count in utilization.items():
            if count > self.free(resource):
                raise PlacementError(
                    f"region ({self.row},{self.col}) out of {resource}: "
                    f"need {count}, free {self.free(resource)}"
                )
        for resource, count in utilization.items():
            self.used[resource] = self.used.get(resource, 0) + count

    def release(self, utilization: Mapping[str, int]) -> None:
        """Return previously allocated resources to the region."""
        for resource, count in utilization.items():
            current = self.used.get(resource, 0)
            if count > current:
                raise PlacementError(
                    f"region ({self.row},{self.col}) releasing more "
                    f"{resource} ({count}) than allocated ({current})"
                )
            self.used[resource] = current - count


class PlacementError(RuntimeError):
    """Raised when a circuit does not fit the fabric."""


@dataclass(frozen=True)
class Shard:
    """One piece of a deployed circuit in a single clock region."""

    row: int
    col: int
    utilization: Tuple[Tuple[str, int], ...]

    def utilization_dict(self) -> Dict[str, int]:
        """Per-resource counts of this shard as a dict."""
        return dict(self.utilization)


@dataclass(frozen=True)
class Placement:
    """Where a deployed circuit landed, shard by shard."""

    circuit: CircuitSpec
    shards: Tuple[Shard, ...]

    @property
    def regions(self) -> Tuple[Tuple[int, int], ...]:
        """The (row, col) of each shard."""
        return tuple((shard.row, shard.col) for shard in self.shards)


class Fabric:
    """Programmable-logic fabric of one board.

    Args:
        board: a :class:`BoardSpec` or board name; sets total resources.
        rows, cols: clock-region grid shape (ZCU102's XCZU9EG exposes a
            grid of clock regions; the default 7x3 mirrors it).
    """

    def __init__(self, board="ZCU102", rows: int = 7, cols: int = 3):
        if isinstance(board, str):
            board = get_board(board)
        if not isinstance(board, BoardSpec):
            raise TypeError(f"board must be a name or BoardSpec, got {board!r}")
        if rows <= 0 or cols <= 0:
            raise ValueError("region grid must be non-empty")
        self.board = board
        self.rows = rows
        self.cols = cols
        totals = {
            "lut": board.luts,
            "ff": board.flip_flops,
            "dsp": board.dsp_blocks,
            # BRAM count is not in Table I; use the XCZU9EG's 912 blocks
            # scaled by LUT ratio for other boards.
            "bram": max(1, round(912 * board.luts / 274_080)),
        }
        n_regions = rows * cols
        self.regions: List[Region] = []
        for row in range(rows):
            for col in range(cols):
                capacity = {
                    resource: total // n_regions
                    for resource, total in totals.items()
                }
                self.regions.append(Region(row=row, col=col, capacity=capacity))
        self._placements: Dict[str, Placement] = {}

    @property
    def total_capacity(self) -> Dict[str, int]:
        """Summed capacity across regions (slightly below device totals
        due to integer division per region)."""
        totals: Dict[str, int] = {}
        for region in self.regions:
            for resource, count in region.capacity.items():
                totals[resource] = totals.get(resource, 0) + count
        return totals

    @property
    def total_used(self) -> Dict[str, int]:
        """Summed allocated resources across regions."""
        totals: Dict[str, int] = {resource: 0 for resource in RESOURCE_TYPES}
        for region in self.regions:
            for resource, count in region.used.items():
                totals[resource] = totals.get(resource, 0) + count
        return totals

    def utilization_fraction(self, resource: str) -> float:
        """Fraction of ``resource`` currently allocated."""
        capacity = self.total_capacity.get(resource, 0)
        if capacity == 0:
            return 0.0
        return self.total_used.get(resource, 0) / capacity

    def deploy(
        self, circuit: CircuitSpec, region: Optional[Tuple[int, int]] = None
    ) -> Placement:
        """Place ``circuit`` on the fabric.

        With ``region`` the whole circuit goes into one clock region;
        without it the circuit is spread evenly across all regions
        (one shard per region), which is how the power-virus array and
        the RO baseline are deployed in the paper.
        """
        if circuit.name in self._placements:
            raise PlacementError(f"circuit {circuit.name!r} already deployed")
        if region is not None:
            row, col = region
            target = self._region_at(row, col)
            target.allocate(circuit.utilization)
            shard = Shard(
                row=row,
                col=col,
                utilization=tuple(sorted(circuit.utilization.items())),
            )
            placement = Placement(circuit=circuit, shards=(shard,))
        else:
            placement = self._deploy_distributed(circuit)
        self._placements[circuit.name] = placement
        return placement

    def _deploy_distributed(self, circuit: CircuitSpec) -> Placement:
        n_regions = len(self.regions)
        shards: List[Shard] = []
        allocated: List[Tuple[Region, Dict[str, int]]] = []
        try:
            for index, target in enumerate(self.regions):
                shard_utilization: Dict[str, int] = {}
                for resource, count in circuit.utilization.items():
                    base = count // n_regions
                    extra = 1 if index < count % n_regions else 0
                    if base + extra:
                        shard_utilization[resource] = base + extra
                if not shard_utilization:
                    continue
                target.allocate(shard_utilization)
                allocated.append((target, shard_utilization))
                shards.append(
                    Shard(
                        row=target.row,
                        col=target.col,
                        utilization=tuple(sorted(shard_utilization.items())),
                    )
                )
        except PlacementError:
            for target, shard_utilization in allocated:
                target.release(shard_utilization)
            raise
        if not shards:
            raise PlacementError(
                f"circuit {circuit.name!r} has no resources to place"
            )
        return Placement(circuit=circuit, shards=tuple(shards))

    def undeploy(self, name: str) -> None:
        """Remove a circuit and free its resources."""
        placement = self._placements.pop(name, None)
        if placement is None:
            raise PlacementError(f"circuit {name!r} is not deployed")
        for shard in placement.shards:
            self._region_at(shard.row, shard.col).release(
                shard.utilization_dict()
            )

    def deployed(self) -> List[Placement]:
        """All current placements, in deployment order."""
        return list(self._placements.values())

    def placement_of(self, name: str) -> Placement:
        """Look up a deployed circuit by name."""
        try:
            return self._placements[name]
        except KeyError:
            raise PlacementError(f"circuit {name!r} is not deployed") from None

    def _region_at(self, row: int, col: int) -> Region:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise PlacementError(
                f"region ({row},{col}) outside {self.rows}x{self.cols} grid"
            )
        return self.regions[row * self.cols + col]
