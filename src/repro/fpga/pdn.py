"""Power delivery network: regulated rails and the Eq. (1) droop model.

Two physical regimes matter for the paper's argument:

* **Unstabilized shared PDN** (what prior crafted-circuit attacks
  exploit): a victim's current step produces a transient voltage drop
  ``V_drop = I*R + L*dI/dt`` (paper Eq. 1) that a co-resident sensor
  circuit can observe.
* **Stabilized rail** (what modern boards ship): a point-of-load
  regulator holds the rail inside a narrow band (0.825-0.876 V on Zynq
  UltraScale+), leaving only a millivolt-scale load-line droop plus
  ripple.  Voltage leakage nearly vanishes — but since ``P = V * I``
  with V pinned, the *current* tracks the victim's power one-for-one,
  which is exactly the channel AmpereBleed reads through the INA226s.

:class:`VoltageRegulator` implements the stabilized rail; the module
functions implement the classic droop arithmetic used by the RO
baseline comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import require_non_negative, require_positive


def resistive_drop(current: np.ndarray, resistance: float) -> np.ndarray:
    """Steady-state ``I*R`` drop in volts."""
    require_non_negative(resistance, "resistance")
    return np.asarray(current, dtype=np.float64) * resistance


def inductive_drop(di_dt: np.ndarray, inductance: float) -> np.ndarray:
    """Transient ``L*dI/dt`` drop in volts."""
    require_non_negative(inductance, "inductance")
    return np.asarray(di_dt, dtype=np.float64) * inductance


def transient_vdrop(
    current: np.ndarray,
    di_dt: np.ndarray,
    resistance: float,
    inductance: float,
) -> np.ndarray:
    """Eq. (1) of the paper: ``V_drop = I*R + L*dI/dt``."""
    return resistive_drop(current, resistance) + inductive_drop(di_dt, inductance)


@dataclass(frozen=True)
class VoltageRegulator:
    """Point-of-load regulator with load-line droop, clamped to a band.

    The output voltage under load ``I`` is::

        V(I) = v_set - r_loadline * I - k_quadratic * I^2

    clamped into ``band``.  The quadratic term models the mild
    nonlinearity of real multi-phase regulators near their current
    limit; it is what keeps the RO baseline's correlation with victim
    activity slightly below a perfect -1 (paper: -0.996) even before
    noise.

    Attributes:
        v_set: regulation setpoint in volts (defaults to mid-band of the
            Zynq UltraScale+ range).
        band: allowed (min, max) output voltage.
        r_loadline: linear droop in ohms.  The default 0.45 mOhm gives
            ~3 mV of droop over the power-virus sweep's ~6.4 A dynamic
            range — inside the 51 mV stabilizer band, as measured on
            the real board.
        k_quadratic: second-order droop coefficient in V/A^2.
    """

    v_set: float = 0.8505
    band: Tuple[float, float] = (0.825, 0.876)
    r_loadline: float = 0.45e-3
    k_quadratic: float = 6.0e-6

    def __post_init__(self):
        require_positive(self.v_set, "v_set")
        low, high = self.band
        if not (0 < low <= high):
            raise ValueError(f"invalid regulation band {self.band}")
        if not (low <= self.v_set <= high):
            raise ValueError(
                f"setpoint {self.v_set} outside regulation band {self.band}"
            )
        require_non_negative(self.r_loadline, "r_loadline")
        require_non_negative(self.k_quadratic, "k_quadratic")

    def voltage(self, current: np.ndarray, ripple: np.ndarray = 0.0) -> np.ndarray:
        """Rail voltage under load ``current`` (amps), plus ``ripple``.

        ``ripple`` is additive noise in volts (regulator switching
        ripple, already drawn by the caller from its own stream).  The
        result is clamped into the regulation band — the stabilizer
        never lets the rail leave it.
        """
        current = np.asarray(current, dtype=np.float64)
        if np.any(current < 0):
            raise ValueError("rail current must be >= 0")
        droop = self.r_loadline * current + self.k_quadratic * current**2
        volts = self.v_set - droop + np.asarray(ripple, dtype=np.float64)
        low, high = self.band
        return np.clip(volts, low, high)

    def droop_at(self, current: float) -> float:
        """Total (linear + quadratic) droop in volts at ``current`` amps."""
        require_non_negative(current, "current")
        return self.r_loadline * current + self.k_quadratic * current**2


def zynq_us_plus_regulator(**overrides) -> VoltageRegulator:
    """The ZCU102's VCCINT regulator (0.825-0.876 V band)."""
    defaults = dict(v_set=0.8505, band=(0.825, 0.876))
    defaults.update(overrides)
    return VoltageRegulator(**defaults)


def versal_regulator(**overrides) -> VoltageRegulator:
    """A Versal-class core regulator (0.775-0.825 V band)."""
    defaults = dict(v_set=0.80, band=(0.775, 0.825))
    defaults.update(overrides)
    return VoltageRegulator(**defaults)
