"""Ring-oscillator voltage sensor: the crafted-circuit baseline.

Prior remote power side-channel attacks (Zhao & Suh, S&P'18) instantiate
ring oscillators on the victim FPGA: a combinational loop whose
oscillation frequency tracks the supply voltage (gate delay falls as
overdrive rises), feeding a counter that is sampled at a fixed interval.
Victim switching activity drops the shared-PDN voltage, which shows up
as *fewer counts per window* — hence the strongly negative correlation
with victim activity (-0.996 in Fig 2).

On a stabilized rail, the only voltage signal the RO can see is the
regulator's millivolt-scale load line, so its relative variation is
tiny; AmpereBleed's current readings vary ~261x more over the same
sweep.  This module provides the RO model used for that comparison.
"""

from __future__ import annotations

import numpy as np

from repro.fpga.fabric import CircuitSpec
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import (
    require_int_in_range,
    require_non_negative,
    require_positive,
)


class RingOscillator:
    """A single RO: frequency as a (linearized) function of voltage.

    Around the operating point ``v_ref`` the oscillation frequency is::

        f(V) = f_nominal * (1 + sensitivity * (V - v_ref) / v_ref)

    Args:
        f_nominal: oscillation frequency at ``v_ref`` in hertz.  A
            5-stage LUT loop on UltraScale+ runs in the hundreds of MHz.
        v_ref: reference voltage in volts.
        sensitivity: dimensionless voltage-to-frequency gain.  CMOS gate
            delay near nominal voltage gives a gain of roughly 1-2; the
            default is calibrated so the Fig 2 sweep lands at the
            paper's ~261x current-vs-RO variation ratio.
        n_stages: inverter stages (odd), kept for realism/reporting.
    """

    def __init__(
        self,
        f_nominal: float = 380e6,
        v_ref: float = 0.8505,
        sensitivity: float = 1.41,
        n_stages: int = 5,
    ):
        self.f_nominal = require_positive(f_nominal, "f_nominal")
        self.v_ref = require_positive(v_ref, "v_ref")
        self.sensitivity = require_non_negative(sensitivity, "sensitivity")
        self.n_stages = require_int_in_range(n_stages, 1, 1001, "n_stages")
        if self.n_stages % 2 == 0:
            raise ValueError("a ring oscillator needs an odd stage count")

    def frequency(self, voltage: np.ndarray) -> np.ndarray:
        """Oscillation frequency in hertz at each supply voltage."""
        voltage = np.asarray(voltage, dtype=np.float64)
        if np.any(voltage <= 0):
            raise ValueError("supply voltage must be > 0")
        delta = (voltage - self.v_ref) / self.v_ref
        return self.f_nominal * (1.0 + self.sensitivity * delta)


class RoSensorBank:
    """Distributed RO sensors with counter sampling (Zhao & Suh style).

    The attacker increments a counter from the RO output and samples it
    at a fixed interval; the per-window increment is the observation.

    Args:
        oscillator: the RO cell model (shared by all instances).
        n_instances: ROs spread across the fabric; their counts are
            averaged, mirroring the paper's spatially-distributed
            deployment.
        sample_window: counter sampling interval in seconds.  Zhao &
            Suh sample at 2 MHz, i.e. a 0.5 us window.
        jitter_counts: RMS phase/sampling jitter in counts per window.
    """

    def __init__(
        self,
        oscillator: RingOscillator = None,
        n_instances: int = 32,
        sample_window: float = 0.5e-6,
        jitter_counts: float = 0.7,
    ):
        self.oscillator = oscillator if oscillator is not None else RingOscillator()
        self.n_instances = require_int_in_range(
            n_instances, 1, 100_000, "n_instances"
        )
        self.sample_window = require_positive(sample_window, "sample_window")
        self.jitter_counts = require_non_negative(jitter_counts, "jitter_counts")

    @property
    def nominal_count(self) -> float:
        """Expected counts per window at the reference voltage."""
        return self.oscillator.f_nominal * self.sample_window

    def counts(self, voltage: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Sampled counter increments for each supply-voltage value.

        Each reading is the bank average of ``n_instances`` ROs, each
        with independent phase jitter, floored to the counter's integer
        grid (the average of integers is reported at 1/n resolution,
        matching how the attack software post-processes the bank).
        """
        generator = ensure_rng(rng)
        voltage = np.atleast_1d(np.asarray(voltage, dtype=np.float64))
        expected = self.oscillator.frequency(voltage) * self.sample_window
        noise = generator.standard_normal(
            (self.n_instances,) + expected.shape
        ) * self.jitter_counts
        per_ro = np.floor(expected[np.newaxis, :] + noise)
        return per_ro.mean(axis=0)

    def circuit_spec(self) -> CircuitSpec:
        """Fabric deployment spec: loop LUTs plus a 32-bit counter each.

        The RO itself burns power (it toggles continuously at f_nominal)
        — one reason cloud providers ban them — but its draw is constant
        and victim-independent, so it contributes only to the static
        floor in the sweep.
        """
        luts_per_ro = self.oscillator.n_stages + 8  # loop + sampling logic
        ffs_per_ro = 32  # the counter
        return CircuitSpec(
            name="ro-sensor-bank",
            utilization={
                "lut": self.n_instances * luts_per_ro,
                "ff": self.n_instances * ffs_per_ro,
            },
            activity={"lut": 1.0, "ff": 0.5},
        )
