"""RSA-1024 victim circuit: square-and-multiply engine at 100 MHz.

Follows the paper's victim (§IV-C, after Zhao & Suh): two dedicated
modular-multiplication modules and a state machine that iterates over
each bit of the 1024-bit exponent, LSB first.  Every iteration activates
the *square* module; iterations whose exponent bit is 1 additionally
activate the *multiply* module, doubling the switching activity for
that iteration.  Both multipliers finish within the same (fixed) cycle
count, so the iteration cadence is data-independent — only the *power*
per iteration leaks the bit.

The secret exponent is embedded in the (encrypted) bitstream: once
deployed it cannot be read back even by privileged software, which is
why recovering its Hamming weight from the current trace matters.

The circuit exposes two things: a functional datapath (``encrypt``,
bit-exact vs. ``pow``) and a periodic power :class:`ActivityTimeline`
for the sensor substrate.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.crypto.rsa_math import (
    RSA_BITS,
    exponent_bits_lsb_first,
    square_and_multiply,
)
from repro.fpga.fabric import CircuitSpec
from repro.soc.workload import ActivityTimeline, PiecewiseActivity
from repro.utils.validation import (
    require_int_in_range,
    require_non_negative,
    require_positive,
)


class RsaCircuit:
    """The FPGA RSA-1024 engine as a power-producing victim.

    Args:
        exponent: the secret exponent (1 <= e < 2^width).
        modulus: the RSA modulus (any odd ``width``-bit integer works
            for the side-channel study; see ``crypto.random_modulus``).
        width: exponent register width in bits (1024 in the paper).
        clock_hz: circuit clock (the paper runs it at 100 MHz, 5x the
            20 MHz of Zhao & Suh's victim).
        cycles_per_iteration: cycles each square/multiply iteration
            takes; both modules are synchronized to this latency.
        p_square: dynamic power in watts while the square module runs
            (every iteration).
        p_multiply: additional dynamic power while the multiply module
            runs (iterations with exponent bit 1).  Its magnitude sets
            the per-64-Hamming-weight current step of Fig 4 (~7 mA at
            0.85 V with the default — every key distinguishable in
            current, ~5 groups in 25 mW-LSB power).
        p_idle: static + control-logic power of the deployed circuit.
    """

    def __init__(
        self,
        exponent: int,
        modulus: int,
        width: int = RSA_BITS,
        clock_hz: float = 100e6,
        cycles_per_iteration: int = 1056,
        p_square: float = 0.110,
        p_multiply: float = 0.100,
        p_idle: float = 0.020,
    ):
        if exponent <= 0:
            raise ValueError("the circuit does not support a zero exponent")
        if modulus <= 1:
            raise ValueError("modulus must be > 1")
        self.width = require_int_in_range(width, 8, 65536, "width")
        if exponent.bit_length() > self.width:
            raise ValueError(
                f"exponent needs {exponent.bit_length()} bits, "
                f"register is {self.width}"
            )
        self.exponent = int(exponent)
        self.modulus = int(modulus)
        self.clock_hz = require_positive(clock_hz, "clock_hz")
        self.cycles_per_iteration = require_int_in_range(
            cycles_per_iteration, 1, 1_000_000, "cycles_per_iteration"
        )
        self.p_square = require_non_negative(p_square, "p_square")
        self.p_multiply = require_non_negative(p_multiply, "p_multiply")
        self.p_idle = require_non_negative(p_idle, "p_idle")
        self._bits = exponent_bits_lsb_first(self.exponent, self.width)

    @property
    def iteration_seconds(self) -> float:
        """Wall time of one square(-and-multiply) iteration."""
        return self.cycles_per_iteration / self.clock_hz

    @property
    def exponentiation_seconds(self) -> float:
        """Wall time of one full modular exponentiation."""
        return self.width * self.iteration_seconds

    @property
    def hamming_weight(self) -> int:
        """Set bits in the exponent — the leaked quantity."""
        return sum(self._bits)

    @property
    def mean_power(self) -> float:
        """Long-run average power in watts while looping encryptions.

        ``p_idle + p_square + (HW/width) * p_multiply`` — linear in the
        Hamming weight, which is why window-averaged current separates
        the 17 keys in Fig 4.
        """
        duty = self.hamming_weight / self.width
        return self.p_idle + self.p_square + duty * self.p_multiply

    def encrypt(self, plaintext: int) -> int:
        """Run the datapath: ``plaintext ** exponent mod modulus``."""
        if not (0 <= plaintext < self.modulus):
            raise ValueError("plaintext must be in [0, modulus)")
        return square_and_multiply(
            plaintext, self.exponent, self.modulus, self.width
        )

    def timeline(self, start: float = 0.0) -> ActivityTimeline:
        """Periodic power profile of back-to-back exponentiations.

        One period spans ``width`` iterations; iteration ``i`` draws
        ``p_idle + p_square`` plus ``p_multiply`` when exponent bit ``i``
        (LSB-first) is set.  The plaintext value does not enter the
        profile: the multipliers are constant-latency, so data only
        modulates power at a level far below the modeled module-grained
        switching (absorbed by sensor noise downstream).
        """
        iteration = self.iteration_seconds
        edges = start + iteration * np.arange(self.width + 1)
        powers = np.array(
            [
                self.p_idle + self.p_square + bit * self.p_multiply
                for bit in self._bits
            ],
            dtype=np.float64,
        )
        return PiecewiseActivity(
            edges, powers, period=self.exponentiation_seconds
        )

    def multiply_schedule(self) -> Tuple[int, ...]:
        """Per-iteration multiply activations (the leaky control flow)."""
        return tuple(self._bits)

    def circuit_spec(self) -> CircuitSpec:
        """Fabric deployment spec for the engine.

        Two 1024-bit modular multipliers dominate: each is roughly 18 k
        LUTs / 20 k FFs / 32 DSP blocks on UltraScale+-class fabric,
        plus the state machine and exponent register.
        """
        return CircuitSpec(
            name="rsa-1024",
            utilization={
                "lut": 2 * 18_000 + 1_500,
                "ff": 2 * 20_000 + self.width,
                "dsp": 2 * 32,
                "bram": 8,
            },
            activity={"lut": 0.25, "ff": 0.25, "dsp": 0.6, "bram": 0.1},
        )

    def __repr__(self) -> str:
        return (
            f"RsaCircuit(width={self.width}, HW={self.hamming_weight}, "
            f"clock={self.clock_hz / 1e6:.0f} MHz)"
        )
