"""A small library of victim workload types for classification studies.

The paper's related work includes classifying *computations* on
multi-tenant FPGAs (Gobulukoglu et al., DAC'21).  AmpereBleed enables
the same study without any crafted sensor: different workload classes
load the rails with characteristically different temporal shapes.
This module provides representative members of four classes —

* ``burst``  — a duty-cycled compute kernel (accelerator batches);
* ``stream`` — a constant-rate streaming pipeline (video/DSP);
* ``memory`` — a DDR-bound mover with periodic buffer turnarounds;
* ``crypto`` — a blocked crypto engine (constant high draw with short
  key-schedule stalls);

each parameterized and randomized per instance, so a classifier must
learn the *shape*, not one fixed trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.soc.workload import ActivityTimeline, PiecewiseActivity
from repro.utils.rng import RngLike, ensure_rng, spawn

#: The workload classes this library generates.
WORKLOAD_CLASSES = ("burst", "stream", "memory", "crypto")


@dataclass(frozen=True)
class WorkloadInstance:
    """One generated victim: its class label and per-rail timelines."""

    kind: str
    fpga: ActivityTimeline
    ddr: ActivityTimeline

    def attach(self, soc, name: str = "victim") -> None:
        """Attach both rails' timelines to a SoC."""
        soc.replace_workload("fpga", name, self.fpga)
        soc.replace_workload("ddr", name, self.ddr)

    def detach(self, soc, name: str = "victim") -> None:
        """Detach from a SoC (ignores missing attachments)."""
        for rail in ("fpga", "ddr"):
            try:
                soc.detach_workload(rail, name)
            except KeyError:
                pass


def _burst(rng: np.random.Generator) -> WorkloadInstance:
    """Duty-cycled accelerator: heavy compute bursts, DDR at edges."""
    period = rng.uniform(0.12, 0.45)
    duty = rng.uniform(0.25, 0.6)
    p_burst = rng.uniform(1.2, 2.8)
    on = period * duty
    off = period - on
    fpga = PiecewiseActivity.from_segments(
        [(on, p_burst), (off, 0.05)], period=period
    )
    # DDR moves operands at the burst boundaries.
    edge = min(0.25 * on, 0.02)
    ddr = PiecewiseActivity.from_segments(
        [(edge, 0.8), (on - edge, 0.1), (edge, 0.6), (off - edge, 0.02)],
        period=period,
    )
    return WorkloadInstance(kind="burst", fpga=fpga, ddr=ddr)


def _stream(rng: np.random.Generator) -> WorkloadInstance:
    """Streaming pipeline: steady draw with small frame-rate ripple."""
    frame = rng.uniform(0.02, 0.05)
    base = rng.uniform(0.8, 1.6)
    ripple = rng.uniform(0.05, 0.15) * base
    fpga = PiecewiseActivity.from_segments(
        [(frame * 0.8, base + ripple), (frame * 0.2, base - ripple)],
        period=frame,
    )
    ddr_level = rng.uniform(0.3, 0.7)
    ddr = PiecewiseActivity.from_segments(
        [(frame, ddr_level)], period=frame
    )
    return WorkloadInstance(kind="stream", fpga=fpga, ddr=ddr)


def _memory(rng: np.random.Generator) -> WorkloadInstance:
    """DDR-bound mover: low fabric draw, heavy DDR with turnarounds."""
    buffer_period = rng.uniform(0.06, 0.25)
    transfer = buffer_period * rng.uniform(0.7, 0.9)
    p_ddr = rng.uniform(0.9, 1.6)
    fpga = PiecewiseActivity.from_segments(
        [(buffer_period, rng.uniform(0.10, 0.30))], period=buffer_period
    )
    ddr = PiecewiseActivity.from_segments(
        [(transfer, p_ddr), (buffer_period - transfer, 0.05)],
        period=buffer_period,
    )
    return WorkloadInstance(kind="memory", fpga=fpga, ddr=ddr)


def _crypto(rng: np.random.Generator) -> WorkloadInstance:
    """Blocked crypto engine: flat high draw, short re-key stalls."""
    block_period = rng.uniform(0.3, 0.8)
    stall = rng.uniform(0.01, 0.03)
    p_engine = rng.uniform(0.5, 1.1)
    fpga = PiecewiseActivity.from_segments(
        [(block_period - stall, p_engine), (stall, 0.08)],
        period=block_period,
    )
    ddr = PiecewiseActivity.from_segments(
        [(block_period, rng.uniform(0.05, 0.15))], period=block_period
    )
    return WorkloadInstance(kind="crypto", fpga=fpga, ddr=ddr)


_GENERATORS: Dict[str, Callable] = {
    "burst": _burst,
    "stream": _stream,
    "memory": _memory,
    "crypto": _crypto,
}


def generate_workload(kind: str, seed: RngLike = None) -> WorkloadInstance:
    """Generate one randomized victim of class ``kind``."""
    try:
        generator = _GENERATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown workload class {kind!r}; "
            f"expected one of {WORKLOAD_CLASSES}"
        ) from None
    rng = spawn(seed, f"workload-{kind}")
    return generator(rng)


def generate_dataset(
    instances_per_class: int, seed: RngLike = None
) -> List[WorkloadInstance]:
    """A balanced set of randomized victims across all classes."""
    if instances_per_class < 1:
        raise ValueError("instances_per_class must be >= 1")
    base = spawn(seed, "workload-dataset")
    victims: List[WorkloadInstance] = []
    for kind in WORKLOAD_CLASSES:
        for _ in range(instances_per_class):
            rng = ensure_rng(int(base.integers(0, 2**63)))
            victims.append(_GENERATORS[kind](rng))
    return victims
