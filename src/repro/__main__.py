"""``python -m repro`` — the package-level CLI entry point.

Delegates to :mod:`repro.cli`, so ``python -m repro check`` and
``python -m repro.cli check`` are the same program.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
