"""Per-board circuit breakers with seed-deterministic backoff.

A board that keeps failing jobs should shed load, not burn the
scheduler's retry budget: after ``failure_threshold`` consecutive
failures the breaker **opens** and dispatches to that board are
refused for a cooldown window, then a single **half-open** probe is
let through — success closes the breaker, failure re-opens it with an
exponentially longer cooldown.  This is the classic
closed→open→half-open state machine, shaped like the
:class:`repro.faults.RetryPolicy` the resilient sampler uses
(threshold + base delay + multiplier + cap), lifted from one sensor
read to a whole board.

Two deliberate departures from textbook breakers keep the fleet
deterministic:

* **Ticks, not wall clock.**  The breaker never reads a clock; the
  caller passes a monotonically non-decreasing ``now`` (the fleet
  scheduler advances a tick per scheduling decision).  Replaying the
  same job sequence replays the same transitions.
* **Hashed jitter.**  The cooldown jitter that de-synchronizes
  breakers in a real fleet is drawn from the counter-based splitmix64
  hash (:func:`repro.utils.hashed_uniform`) keyed by the breaker name
  and trip count — decorrelated across boards, identical across runs.

Every transition is recorded with its tick and reason; the scheduler
surfaces the log in :class:`repro.fleet.FleetReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.perf.config import (
    breaker_cooldown_from_env,
    breaker_threshold_from_env,
)
from repro.utils.hashrand import hashed_uniform
from repro.utils.rng import derive_seed

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BreakerPolicy",
    "BreakerTransition",
    "CircuitBreaker",
    "TransientJobError",
    "BoardOutageError",
]

#: Breaker states (strings so logs and reports read without a legend).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class TransientJobError(RuntimeError):
    """A job failure worth retrying: the board, not the job, is sick.

    The fleet scheduler requeues a job whose dispatch raised this (or
    a subclass) instead of recording a terminal failure — it is the
    error type chaos injectors use to model outage windows.
    """


class BoardOutageError(TransientJobError):
    """A board was unreachable for a dispatch (injected or real)."""


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/recovery parameters for one circuit breaker.

    Attributes:
        failure_threshold: consecutive failures that open the breaker.
        cooldown: base open-state cooldown, in caller ticks.
        backoff_multiplier: cooldown growth per re-trip (the half-open
            probe failed), mirroring ``RetryPolicy.backoff``.
        max_cooldown: cap on the grown cooldown.
        jitter: fraction of the cooldown randomized (deterministically)
            around the base, in ``[0, 1)``; 0 disables jitter.
        half_open_probes: dispatches allowed through a half-open
            breaker before it decides.
    """

    failure_threshold: int = 3
    cooldown: float = 4.0
    backoff_multiplier: float = 2.0
    max_cooldown: float = 64.0
    jitter: float = 0.25
    half_open_probes: int = 1

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown <= 0:
            raise ValueError("cooldown must be > 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.max_cooldown < self.cooldown:
            raise ValueError("max_cooldown must be >= cooldown")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")

    @classmethod
    def from_env(cls) -> "BreakerPolicy":
        """Default policy with any environment overrides applied.

        ``AMPEREBLEED_BREAKER_THRESHOLD`` / ``AMPEREBLEED_BREAKER_COOLDOWN``
        replace the trip threshold and base cooldown; everything else
        keeps its default.
        """
        overrides = {}
        threshold = breaker_threshold_from_env()
        if threshold is not None:
            overrides["failure_threshold"] = threshold
        cooldown = breaker_cooldown_from_env()
        if cooldown is not None:
            overrides["cooldown"] = cooldown
            overrides["max_cooldown"] = max(
                cls.max_cooldown, 16.0 * cooldown
            )
        return cls(**overrides)


@dataclass(frozen=True)
class BreakerTransition:
    """One state change: when, from, to, and why."""

    tick: float
    from_state: str
    to_state: str
    reason: str

    def as_dict(self) -> dict:
        return {
            "tick": self.tick,
            "from": self.from_state,
            "to": self.to_state,
            "reason": self.reason,
        }


class CircuitBreaker:
    """One board's closed→open→half-open failure containment.

    Args:
        name: breaker identity (the board name) — keys the jitter
            stream and labels the transition log.
        policy: trip/recovery parameters (default:
            :meth:`BreakerPolicy.from_env`).
        seed: run seed; with ``name`` it fully determines the jittered
            cooldowns, so a replayed run replays the same windows.
    """

    def __init__(
        self,
        name: str,
        policy: Optional[BreakerPolicy] = None,
        seed: int = 0,
    ):
        self.name = name
        self.policy = policy or BreakerPolicy.from_env()
        self._jitter_key = derive_seed(seed, f"breaker:{name}")
        self._state = CLOSED
        self._failures = 0  # consecutive, while closed
        self._trips = 0  # times opened (drives backoff + jitter counter)
        self._open_until = 0.0
        self._probes_inflight = 0
        self._transitions: List[BreakerTransition] = []

    # -- introspection ------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def transitions(self) -> Tuple[BreakerTransition, ...]:
        return tuple(self._transitions)

    def _shift(self, now: float, to_state: str, reason: str) -> None:
        self._transitions.append(
            BreakerTransition(now, self._state, to_state, reason)
        )
        self._state = to_state

    # -- cooldown -----------------------------------------------------

    def _cooldown(self) -> float:
        """The jittered cooldown for the current trip count.

        Base grows like ``RetryPolicy.backoff`` (exponential, capped);
        jitter shifts it by a hashed-uniform factor in
        ``[1 - jitter, 1 + jitter)`` keyed by (seed, name, trip).
        """
        policy = self.policy
        grown = policy.cooldown * policy.backoff_multiplier ** max(
            0, self._trips - 1
        )
        base = min(grown, policy.max_cooldown)
        if policy.jitter <= 0.0:
            return base
        draw = float(
            hashed_uniform(self._jitter_key, np.uint64(self._trips))
        )
        return base * (1.0 + policy.jitter * (2.0 * draw - 1.0))

    # -- the state machine --------------------------------------------

    def allow(self, now: float) -> bool:
        """May a dispatch proceed at tick ``now``?

        Open breakers refuse until the cooldown elapses, then admit
        ``half_open_probes`` probes; everything else queues behind the
        probe's verdict.
        """
        if self._state == OPEN:
            if now < self._open_until:
                return False
            self._shift(now, HALF_OPEN, "cooldown elapsed, probing")
            self._probes_inflight = 0
        if self._state == HALF_OPEN:
            if self._probes_inflight >= self.policy.half_open_probes:
                return False
            self._probes_inflight += 1
            return True
        return True

    def record_success(self, now: float) -> None:
        """A dispatch to this board completed (terminal, not failed)."""
        if self._state == HALF_OPEN:
            self._shift(now, CLOSED, "probe succeeded")
            self._trips = 0
        self._failures = 0
        self._probes_inflight = 0

    def record_failure(self, now: float) -> None:
        """A dispatch to this board failed (crash, outage, error)."""
        if self._state == HALF_OPEN:
            self._trips += 1
            self._open_until = now + self._cooldown()
            self._shift(
                now,
                OPEN,
                f"probe failed, cooling down "
                f"{self._open_until - now:.3g} ticks",
            )
            self._probes_inflight = 0
            self._failures = 0
            return
        if self._state == CLOSED:
            self._failures += 1
            if self._failures >= self.policy.failure_threshold:
                self._trips += 1
                self._open_until = now + self._cooldown()
                self._shift(
                    now,
                    OPEN,
                    f"{self._failures} consecutive failures, cooling "
                    f"down {self._open_until - now:.3g} ticks",
                )
                self._failures = 0
