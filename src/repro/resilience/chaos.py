"""Chaos harness: inject fleet-scale faults, assert the invariants.

``bench --chaos`` (→ ``BENCH_fleet_chaos.json``) runs each scenario
below against a small real campaign batch and checks the run-level
invariants a resilient fleet must keep **under** fault injection, not
just on the happy path:

* **no hang** — the scenario finishes inside a wall-clock bound (the
  whole point of deadlines, reaping, and strand-proof futures);
* **terminal states** — every job ends in exactly one of
  :data:`~repro.fleet.scheduler.TERMINAL_STATUSES`;
* **archive parity** — every surviving shard (``done`` / ``skipped``
  / ``quarantined``) seals byte-identical to the matched fault-free
  serial run (the PR 3 determinism contract, now under fire);
* **accuracy parity** — a surviving fingerprint shard evaluates to
  exactly the baseline's Table III accuracies.

Scenarios and what they stress:

==================  ====================================================
``worker-sigkill``  a pool worker SIGKILLs itself mid-append → pool
                    respawn + job resume must seal byte-identical
``worker-sigstop``  a pool worker SIGSTOPs itself (hung, not dead) →
                    the deadline watchdog must reap it and the job
                    must complete via resubmission
``board-outage``    dispatches to a board fail for a window → the
                    circuit breaker must open, half-open probe, close,
                    and every job still finish
``archive-corrupt`` a job's archive manifest is garbled beyond a torn
                    tail → quarantine + fresh re-record, campaign
                    survives
``fault-storm``     ``AMPEREBLEED_FAULT_RATE`` cranked high → the
                    sensor-fault machinery stays deterministic, so the
                    faulted fleet run still matches a faulted serial
                    run byte for byte
==================  ====================================================

Injectors are seed-deterministic — trigger counts are fixed, outage
windows count dispatches (the scheduler's tick clock), and sensor
fault storms ride the counter-hashed :class:`repro.faults.FaultPlan`
— so a red scenario reproduces under the same seed.  Wall-clock only
bounds the *harness* (via :class:`repro.perf.StageTimer`); it never
drives an injector.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.io import MANIFEST_NAME, TraceArchiveWriter
from repro.fleet.bench import _accuracy_cells, _tree_hash, build_fleet_jobs
from repro.fleet.jobs import FleetJob
from repro.fleet.scheduler import (
    STATUS_DONE,
    STATUS_QUARANTINED,
    STATUS_SKIPPED,
    TERMINAL_STATUSES,
    FleetReport,
    FleetScheduler,
)
from repro.perf.bench import SCHEMA_VERSION
from repro.perf.config import (
    FAULT_RATE_ENV,
    available_cpus,
    chaos_scenarios_from_env,
)
from repro.perf.executor import _fork_context
from repro.perf.pool import shutdown_pool
from repro.perf.timer import StageTimer
from repro.resilience.breaker import BoardOutageError, BreakerPolicy
from repro.resilience.quarantine import list_quarantined

__all__ = ["SCENARIOS", "run_chaos_bench"]

#: Every chaos scenario, in the order the bench runs them.
SCENARIOS = (
    "worker-sigkill",
    "worker-sigstop",
    "board-outage",
    "archive-corrupt",
    "fault-storm",
)

#: Board the chaos batches target (one board keeps scenarios quick;
#: the breaker scenario only needs its own denials to advance ticks).
_CHAOS_BOARD = "ZCU102"

#: Per-scenario wall-clock bound for the no-hang invariant (generous:
#: a smoke batch runs in seconds; a hang runs forever).
_DEFAULT_BOUND_S = 240.0

#: Wall-clock budget per job attempt in the sigstop scenario — the
#: reaping latency for a hung worker, so it must comfortably exceed an
#: honest job's runtime while keeping the scenario short.
_SIGSTOP_DEADLINE_S = 20.0

#: Fault-storm sensor fault rate (high enough that every trace sees
#: faults, low enough that sensors stay out of the dead state).
_STORM_RATE = 0.25

#: The outcome statuses whose archives must match the baseline.
_SURVIVING = (STATUS_DONE, STATUS_SKIPPED, STATUS_QUARANTINED)


def _statuses(report: FleetReport) -> Dict[str, int]:
    return report.statuses


def _serial_baseline(
    root: Path, seed: int
) -> Tuple[List[FleetJob], FleetReport]:
    """Fault-free one-at-a-time inline run: the parity reference."""
    jobs = build_fleet_jobs(root, boards=[_CHAOS_BOARD], seed=seed)
    report = FleetScheduler(jobs, max_concurrent=1, use_pool=False).run()
    return jobs, report


def _parity_invariants(
    serial_jobs: Sequence[FleetJob],
    chaos_jobs: Sequence[FleetJob],
    report: FleetReport,
) -> Dict:
    """Archive + accuracy parity over the surviving shards."""
    by_index = {
        outcome.job.out: outcome for outcome in report.outcomes
    }
    archives = []
    archive_parity = True
    survivors = []
    for serial_job, chaos_job in zip(serial_jobs, chaos_jobs):
        outcome = by_index[chaos_job.out]
        if outcome.status not in _SURVIVING:
            archives.append(
                {"job_id": chaos_job.job_id, "status": outcome.status}
            )
            continue
        match = _tree_hash(serial_job.out) == _tree_hash(chaos_job.out)
        archive_parity = archive_parity and match
        archives.append(
            {
                "job_id": chaos_job.job_id,
                "status": outcome.status,
                "identical": match,
            }
        )
        survivors.append((serial_job, chaos_job))
    accuracy_parity: Optional[bool] = None
    for serial_job, chaos_job in survivors:
        if serial_job.kind != "fingerprint":
            continue
        accuracy_parity = _accuracy_cells(serial_job.out) == _accuracy_cells(
            chaos_job.out
        )
        break
    return {
        "archive_parity": archive_parity,
        "accuracy_parity": accuracy_parity,
        "archives": archives,
    }


def _finish(
    name: str,
    serial_jobs,
    chaos_jobs,
    report: FleetReport,
    extra_invariants: Optional[Dict] = None,
    baseline: str = "fault-free-serial",
) -> Dict:
    """Fold one scenario's report into its invariant verdicts."""
    terminal = all(
        outcome is not None and outcome.status in TERMINAL_STATUSES
        for outcome in report.outcomes
    )
    invariants = {"terminal_states": terminal}
    invariants.update(
        _parity_invariants(serial_jobs, chaos_jobs, report)
    )
    if extra_invariants:
        invariants.update(extra_invariants)
    verdicts = [
        value
        for key, value in invariants.items()
        if isinstance(value, bool)
    ]
    return {
        "name": name,
        "baseline": baseline,
        "ok": all(verdicts),
        "invariants": invariants,
        "statuses": _statuses(report),
        "respawns": report.respawns,
        "breaker_events": list(report.breaker_events),
        "report": report.as_dict(),
    }


# ------------------------------------------------------ append bombs


class _patched_append:
    """Temporarily replace ``TraceArchiveWriter.append`` with a bomb.

    The patch is installed in the *parent* before the pool forks, so
    every worker inherits it; the context restores the real method and
    tears the shared pool down on exit so no later fork carries the
    bomb.
    """

    def __init__(self, bomb):
        self._bomb = bomb

    def __enter__(self):
        self._real = TraceArchiveWriter.append
        TraceArchiveWriter.append = self._bomb(self._real)
        shutdown_pool()  # next get_pool() forks workers with the bomb
        return self

    def __exit__(self, *exc_info):
        TraceArchiveWriter.append = self._real
        shutdown_pool()
        return False


def _kill_after(flag: Path, appends: int, sig: int):
    """Bomb factory: signal own process on the Nth armed append.

    The flag file is the once-only latch — it is unlinked before the
    signal fires, so exactly one worker (the first to reach the Nth
    append while the flag exists) stops or dies, fleet-wide.
    """

    def bomb(real_append):
        state = {"left": appends - 1}

        def append(self, *args, **kwargs):
            if flag.exists():
                if state["left"] == 0:
                    flag.unlink()
                    os.kill(os.getpid(), sig)
                state["left"] -= 1
            return real_append(self, *args, **kwargs)

        return append

    return bomb


# --------------------------------------------------------- scenarios


def _scenario_worker_sigkill(root: Path, seed: int) -> Dict:
    serial_jobs, _ = _serial_baseline(root / "serial", seed)
    flag = root / "kill-flag"
    flag.touch()
    with _patched_append(_kill_after(flag, 6, signal.SIGKILL)):
        chaos_jobs = build_fleet_jobs(
            root / "chaos", boards=[_CHAOS_BOARD], seed=seed
        )
        report = FleetScheduler(
            chaos_jobs, max_concurrent=2, use_pool=True, workers=1
        ).run()
    return _finish(
        "worker-sigkill",
        serial_jobs,
        chaos_jobs,
        report,
        extra_invariants={"worker_killed": not flag.exists()},
    )


def _scenario_worker_sigstop(root: Path, seed: int) -> Dict:
    serial_jobs, _ = _serial_baseline(root / "serial", seed)
    flag = root / "stop-flag"
    flag.touch()
    with _patched_append(_kill_after(flag, 4, signal.SIGSTOP)):
        chaos_jobs = build_fleet_jobs(
            root / "chaos",
            boards=[_CHAOS_BOARD],
            seed=seed,
            deadline=_SIGSTOP_DEADLINE_S,
        )
        report = FleetScheduler(
            chaos_jobs, max_concurrent=2, use_pool=True, workers=1
        ).run()
    return _finish(
        "worker-sigstop",
        serial_jobs,
        chaos_jobs,
        report,
        extra_invariants={
            "worker_stopped": not flag.exists(),
            # The hung worker is gone only if the watchdog reaped it.
            "hung_worker_reaped": report.respawns >= 1,
        },
    )


class _BoardOutage:
    """Deterministic outage window: the first N dispatches to a board
    raise :class:`BoardOutageError`, then the board heals."""

    def __init__(self, board: str, failures: int):
        self.board = board
        self.remaining = failures

    def __call__(self, job: FleetJob) -> None:
        if job.board == self.board and self.remaining > 0:
            self.remaining -= 1
            raise BoardOutageError(
                f"injected outage window on {self.board} "
                f"({self.remaining} dispatch failures left)"
            )


def _scenario_board_outage(root: Path, seed: int) -> Dict:
    serial_jobs, _ = _serial_baseline(root / "serial", seed)
    chaos_jobs = build_fleet_jobs(
        root / "chaos", boards=[_CHAOS_BOARD], seed=seed
    )
    policy = BreakerPolicy(
        failure_threshold=3, cooldown=4.0, max_cooldown=32.0
    )
    # threshold + 1 failures: trips the breaker, then fails the first
    # half-open probe too, exercising the re-open backoff leg.
    outage = _BoardOutage(_CHAOS_BOARD, policy.failure_threshold + 1)
    report = FleetScheduler(
        chaos_jobs,
        max_concurrent=2,
        use_pool=False,
        breaker_policy=policy,
        breaker_seed=seed,
        chaos=outage,
    ).run()
    states = [event["to"] for event in report.breaker_events]
    return _finish(
        "board-outage",
        serial_jobs,
        chaos_jobs,
        report,
        extra_invariants={
            "outage_exhausted": outage.remaining == 0,
            "breaker_opened": "open" in states,
            "breaker_recovered": bool(states) and states[-1] == "closed",
            "all_jobs_completed": report.ok,
        },
    )


def _scenario_archive_corrupt(root: Path, seed: int) -> Dict:
    serial_jobs, _ = _serial_baseline(root / "serial", seed)
    chaos_jobs = build_fleet_jobs(
        root / "chaos", boards=[_CHAOS_BOARD], seed=seed
    )
    # Seed one job's archive with a *corrupt* copy of the sealed
    # baseline: a garbled manifest line in the middle is damage no
    # torn tail explains, so resume must quarantine, not abort.
    victim = next(job for job in chaos_jobs if job.kind == "rsa")
    template = next(job for job in serial_jobs if job.kind == "rsa")
    shutil.copytree(template.out, victim.out)
    manifest = Path(victim.out) / MANIFEST_NAME
    lines = manifest.read_text(encoding="utf-8").splitlines()
    lines[1] = '{"chunk": garbled'
    manifest.write_text("\n".join(lines) + "\n", encoding="utf-8")
    report = FleetScheduler(
        chaos_jobs, max_concurrent=2, use_pool=False
    ).run()
    quarantined = list_quarantined(Path(victim.out).parent)
    return _finish(
        "archive-corrupt",
        serial_jobs,
        chaos_jobs,
        report,
        extra_invariants={
            "job_quarantined": report.statuses.get(STATUS_QUARANTINED, 0)
            == 1,
            "quarantine_recorded": len(quarantined) == 1
            and quarantined[0][1].reason == "archive-corrupt"
            and quarantined[0][1].job_id == victim.job_id,
        },
    )


def _scenario_fault_storm(root: Path, seed: int) -> Dict:
    # Both sides of the parity run under the same storm: sensor
    # faults are part of the recording, so the baseline must carry
    # the identical (counter-hashed, hence deterministic) fault plan.
    previous = os.environ.get(FAULT_RATE_ENV)
    os.environ[FAULT_RATE_ENV] = str(_STORM_RATE)
    shutdown_pool()  # workers must fork with the storm armed
    try:
        serial_jobs, _ = _serial_baseline(root / "serial", seed)
        chaos_jobs = build_fleet_jobs(
            root / "chaos", boards=[_CHAOS_BOARD], seed=seed
        )
        report = FleetScheduler(
            chaos_jobs, max_concurrent=2, use_pool=True, workers=2
        ).run()
    finally:
        if previous is None:
            os.environ.pop(FAULT_RATE_ENV, None)
        else:
            os.environ[FAULT_RATE_ENV] = previous
        shutdown_pool()
    return _finish(
        "fault-storm",
        serial_jobs,
        chaos_jobs,
        report,
        baseline=f"serial-at-fault-rate-{_STORM_RATE:g}",
    )


_SCENARIO_RUNNERS = {
    "worker-sigkill": _scenario_worker_sigkill,
    "worker-sigstop": _scenario_worker_sigstop,
    "board-outage": _scenario_board_outage,
    "archive-corrupt": _scenario_archive_corrupt,
    "fault-storm": _scenario_fault_storm,
}

#: Scenarios that need a forked worker pool to mean anything.
_POOL_SCENARIOS = ("worker-sigkill", "worker-sigstop", "fault-storm")


def run_chaos_bench(
    smoke: bool = True,
    seed: int = 0,
    scenarios: Optional[Sequence[str]] = None,
    out_dir=None,
    bound_s: Optional[float] = None,
) -> Dict:
    """Run the chaos scenarios; the shape ``BENCH_fleet_chaos.json``.

    Args:
        smoke: reserved scale switch (the chaos batch is already
            smoke-sized; a full-scale chaos sweep scales with
            ``AMPEREBLEED_FULL`` recording scales, not here).
        seed: drives every injector and every recording byte.
        scenarios: subset to run (``None`` honors ``AMPEREBLEED_CHAOS``
            and falls back to all of :data:`SCENARIOS`).
        out_dir: keep archives here (``None`` = temporary directory).
        bound_s: per-scenario no-hang wall-clock bound.

    Returns:
        The report dict; ``ok`` is True only if every scenario's
        every boolean invariant held.
    """
    if scenarios is None:
        scenarios = chaos_scenarios_from_env()
    if scenarios is None:
        scenarios = SCENARIOS
    unknown = sorted(set(scenarios) - set(SCENARIOS))
    if unknown:
        raise ValueError(
            f"unknown chaos scenarios {unknown}; expected from {SCENARIOS}"
        )
    bound = float(bound_s) if bound_s is not None else _DEFAULT_BOUND_S
    pool_available = _fork_context() is not None
    cleanup = None
    if out_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="amperebleed-chaos-")
        out_dir = cleanup.name
    timer = StageTimer()
    results = []
    try:
        for name in scenarios:
            if name in _POOL_SCENARIOS and not pool_available:
                results.append(
                    {
                        "name": name,
                        "ok": True,
                        "skipped": "fork start method unavailable",
                    }
                )
                continue
            scenario_root = Path(out_dir) / name
            scenario_root.mkdir(parents=True, exist_ok=True)
            with timer.stage(name):
                result = _SCENARIO_RUNNERS[name](scenario_root, seed)
            elapsed = timer.elapsed(name)
            result["elapsed_s"] = elapsed
            result["bound_s"] = bound
            result["invariants"]["no_hang"] = elapsed <= bound
            result["ok"] = result["ok"] and elapsed <= bound
            results.append(result)
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return {
        "benchmark": "fleet-chaos",
        "schema_version": SCHEMA_VERSION,
        "smoke": bool(smoke),
        "seed": int(seed),
        "cpu_count": available_cpus(),
        "scenarios": results,
        "ok": all(result["ok"] for result in results),
        "stage_seconds": timer.as_dict(),
    }
