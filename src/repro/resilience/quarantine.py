"""Quarantine for corrupt trace archives.

A v2 archive whose manifest is damaged beyond a torn tail
(:class:`repro.core.io.ArchiveCorruptError`) used to abort whatever
touched it — one flipped bit in one shard could kill a whole fleet
campaign at resume.  Quarantine contains the blast radius instead:
the damaged directory is **moved** (never deleted — the bytes may be
evidence) into a ``quarantine/`` sidecar next to it, a
machine-readable :class:`QuarantineRecord` is written inside, and the
caller is free to re-record the shard fresh at the original path.

Records carry no wall-clock timestamps — the quarantine sequence
number in the destination name orders events, keeping the layer free
of nondeterminism (and of the repo's wall-clock ban outside
``repro/perf``).
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

__all__ = [
    "QUARANTINE_DIRNAME",
    "RECORD_NAME",
    "QuarantineRecord",
    "quarantine_archive",
    "list_quarantined",
]

#: Sidecar directory name, created next to the condemned archive.
QUARANTINE_DIRNAME = "quarantine"

#: Reason record written inside each quarantined archive directory.
RECORD_NAME = "QUARANTINE.json"


@dataclass(frozen=True)
class QuarantineRecord:
    """Why an archive was quarantined, machine-readable.

    Attributes:
        archive: original archive path, as the caller knew it.
        reason: short stable reason code (e.g. ``archive-corrupt``).
        error: the triggering exception's message, verbatim.
        job_id: fleet job that owned the archive, when known.
    """

    archive: str
    reason: str
    error: str = ""
    job_id: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "archive": self.archive,
            "reason": self.reason,
            "error": self.error,
            "job_id": self.job_id,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuarantineRecord":
        return cls(
            archive=payload["archive"],
            reason=payload["reason"],
            error=payload.get("error", ""),
            job_id=payload.get("job_id"),
        )


def quarantine_archive(
    path: Union[str, Path],
    reason: str,
    error: str = "",
    job_id: Optional[str] = None,
    root: Optional[Union[str, Path]] = None,
) -> Path:
    """Move a damaged archive into quarantine and record why.

    Args:
        path: the condemned archive (directory or file); must exist.
        reason: stable reason code for the record.
        error: triggering exception text, for humans reading the record.
        job_id: owning fleet job id, if any.
        root: where the ``quarantine/`` sidecar lives (default: the
            archive's parent directory).

    Returns:
        The archive's new location inside the quarantine sidecar.  The
        original path no longer exists, so the caller can re-record at
        it immediately.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"nothing to quarantine at {path}")
    base = Path(root) if root is not None else path.parent
    sidecar = base / QUARANTINE_DIRNAME
    sidecar.mkdir(parents=True, exist_ok=True)
    sequence = 0
    while True:
        dest = sidecar / f"{path.name}-{sequence:03d}"
        if not dest.exists():
            break
        sequence += 1
    shutil.move(str(path), str(dest))
    record = QuarantineRecord(
        archive=str(path), reason=reason, error=error, job_id=job_id
    )
    record_path = (
        dest / RECORD_NAME
        if dest.is_dir()
        else dest.with_name(dest.name + ".quarantine.json")
    )
    record_path.write_text(
        json.dumps(record.as_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return dest


def list_quarantined(
    root: Union[str, Path],
) -> List[Tuple[Path, QuarantineRecord]]:
    """All quarantined archives under ``root``'s sidecar, in order.

    Returns ``(location, record)`` pairs sorted by quarantine sequence
    (the zero-padded suffix), i.e. the order the archives were
    condemned.  An empty list when no sidecar exists.
    """
    sidecar = Path(root) / QUARANTINE_DIRNAME
    if not sidecar.is_dir():
        return []
    found: List[Tuple[Path, QuarantineRecord]] = []
    for entry in sorted(sidecar.iterdir()):
        record_path = (
            entry / RECORD_NAME
            if entry.is_dir()
            else entry if entry.name.endswith(".quarantine.json") else None
        )
        if record_path is None or not record_path.exists():
            continue
        payload = json.loads(record_path.read_text(encoding="utf-8"))
        if entry.is_dir():
            found.append((entry, QuarantineRecord.from_dict(payload)))
        else:
            original = entry.with_name(
                entry.name[: -len(".quarantine.json")]
            )
            found.append((original, QuarantineRecord.from_dict(payload)))
    return found
