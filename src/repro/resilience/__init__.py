"""Fleet-wide failure containment: breakers, quarantine, chaos.

PR 8 gave the fleet its throughput substrate; this package gives it a
failure budget.  Three layers, each independently usable:

* :mod:`repro.resilience.breaker` — per-board circuit breakers
  (closed→open→half-open) with seed-deterministic exponential backoff
  and hashed jitter, driven by the scheduler's tick clock rather than
  wall time.
* :mod:`repro.resilience.quarantine` — corrupt archives are moved to
  a ``quarantine/`` sidecar with a machine-readable reason record
  instead of aborting the campaign.
* :mod:`repro.resilience.chaos` — the chaos harness behind ``bench
  --chaos``: seed-deterministic fault injectors (worker SIGKILL /
  SIGSTOP, board outage windows, archive corruption, sensor fault
  storms) composed with run-level invariant checks — no hang, archive
  byte-parity with a fault-free serial run, every job terminal,
  accuracy parity on surviving shards.  Imported lazily (it pulls in
  the fleet layer); use ``from repro.resilience import chaos``.

Deadline enforcement and hung-worker reaping live with the pool they
guard (:class:`repro.perf.pool.WorkerPool`); the scheduler threading
lives in :mod:`repro.fleet.scheduler`.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BoardOutageError,
    BreakerPolicy,
    BreakerTransition,
    CircuitBreaker,
    TransientJobError,
)
from repro.resilience.quarantine import (
    QUARANTINE_DIRNAME,
    QuarantineRecord,
    list_quarantined,
    quarantine_archive,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "BoardOutageError",
    "BreakerPolicy",
    "BreakerTransition",
    "CircuitBreaker",
    "QUARANTINE_DIRNAME",
    "QuarantineRecord",
    "TransientJobError",
    "list_quarantined",
    "quarantine_archive",
]
