"""Distribution summaries and group separability (Fig 4 analysis).

Fig 4 plots the *distribution* of current and power readings for 17
RSA keys of increasing Hamming weight, and argues (a) the current
channel separates all 17, while (b) the 25 mW power LSB collapses them
into about 5 groups.  These helpers compute box-plot style summaries
and the number of distinguishable groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.utils.validation import as_1d_float_array


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-plus-mean summary of one reading distribution."""

    n: int
    mean: float
    median: float
    q1: float
    q3: float
    low: float
    high: float

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1


def summarize(samples) -> DistributionSummary:
    """Box-plot summary of a sample set."""
    samples = as_1d_float_array(samples, "samples")
    if samples.size == 0:
        raise ValueError("cannot summarize an empty sample set")
    q1, median, q3 = np.percentile(samples, [25, 50, 75])
    return DistributionSummary(
        n=int(samples.size),
        mean=float(samples.mean()),
        median=float(median),
        q1=float(q1),
        q3=float(q3),
        low=float(samples.min()),
        high=float(samples.max()),
    )


def count_groups(centers: Sequence[float], min_gap: float) -> int:
    """Number of distinguishable groups among ordered key statistics.

    Keys whose centers (e.g. median readings) differ by less than
    ``min_gap`` are indistinguishable and merge into one group.  With
    ``min_gap`` set to one channel LSB this reproduces the paper's
    "power categorizes the 17 keys into 5 groups" observation.
    """
    centers = as_1d_float_array(centers, "centers")
    if centers.size == 0:
        raise ValueError("need at least one center")
    if min_gap < 0:
        raise ValueError("min_gap must be >= 0")
    ordered = np.sort(centers)
    groups = 1
    anchor = ordered[0]
    for value in ordered[1:]:
        if min_gap > 0:
            is_new_group = value - anchor >= min_gap
        else:
            is_new_group = value != anchor
        if is_new_group:
            groups += 1
            anchor = value
    return groups


def pairwise_separable(
    summaries: List[DistributionSummary], min_gap: float = 0.0
) -> bool:
    """True when every adjacent pair of distributions is separated.

    Two adjacent keys are separable when their medians differ by more
    than ``min_gap`` (defaults to any difference at all); the Fig 4
    claim for the current channel is that all 17 keys are.
    """
    if len(summaries) < 2:
        return True
    medians = [summary.median for summary in summaries]
    ordered = np.sort(medians)
    gaps = np.diff(ordered)
    return bool(np.all(gaps > min_gap))


def overlap_fraction(a, b) -> float:
    """Fraction of the pooled range where two sample sets overlap.

    0.0 = fully separated ranges, 1.0 = identical ranges.  Used by the
    ablation benches to quantify how key distributions blur as noise
    or quantization grows.
    """
    a = as_1d_float_array(a, "a")
    b = as_1d_float_array(b, "b")
    if a.size == 0 or b.size == 0:
        raise ValueError("need non-empty sample sets")
    low = max(a.min(), b.min())
    high = min(a.max(), b.max())
    total_low = min(a.min(), b.min())
    total_high = max(a.max(), b.max())
    if total_high == total_low:
        return 1.0
    return float(max(0.0, high - low) / (total_high - total_low))
