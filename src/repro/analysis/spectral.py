"""Spectral analysis of side-channel traces.

A serving loop is periodic, so its current trace carries a line at the
inference rate (and harmonics).  Estimating that line gives the
attacker the victim's throughput *before* any classifier runs — a
useful fingerprint on its own (distinguishes model families by their
frame rate) and a sanity check that a trace actually contains a
periodic victim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.traces import Trace
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class SpectralPeak:
    """The dominant non-DC spectral line of a trace."""

    frequency_hz: float
    magnitude: float
    #: Ratio of the peak to the median non-DC magnitude ("prominence").
    prominence: float


def amplitude_spectrum(values: np.ndarray, sample_rate: float):
    """One-sided amplitude spectrum of a uniformly-sampled series.

    Returns ``(frequencies, magnitudes)`` with the DC bin removed and
    the mean subtracted first (hwmon readings have a large DC floor).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size < 4:
        raise ValueError("need a 1-D series of at least 4 samples")
    require_positive(sample_rate, "sample_rate")
    centered = values - values.mean()
    spectrum = np.abs(np.fft.rfft(centered))
    frequencies = np.fft.rfftfreq(values.size, d=1.0 / sample_rate)
    return frequencies[1:], spectrum[1:]


def dominant_frequency(
    values: np.ndarray, sample_rate: float
) -> SpectralPeak:
    """The strongest periodic component of a series."""
    frequencies, magnitudes = amplitude_spectrum(values, sample_rate)
    peak_index = int(np.argmax(magnitudes))
    median = float(np.median(magnitudes))
    prominence = (
        magnitudes[peak_index] / median if median > 0 else np.inf
    )
    return SpectralPeak(
        frequency_hz=float(frequencies[peak_index]),
        magnitude=float(magnitudes[peak_index]),
        prominence=float(prominence),
    )


def estimate_serving_rate(
    trace: Trace, max_rate_hz: Optional[float] = None
) -> SpectralPeak:
    """Estimate a victim's inference (serving-loop) rate from a trace.

    The trace must be roughly uniformly sampled; the poll grid's mean
    spacing sets the sample rate.  Rates above ``max_rate_hz`` (or the
    Nyquist limit) cannot be resolved — a 35 ms sensor can only see
    loops slower than ~14 Hz directly; faster loops alias, which is
    itself a usable fingerprint but not a rate estimate.
    """
    if trace.n_samples < 8:
        raise ValueError("need at least 8 samples to estimate a rate")
    spacing = np.diff(trace.times)
    mean_spacing = float(spacing.mean())
    if mean_spacing <= 0:
        raise ValueError("trace timestamps must advance")
    sample_rate = 1.0 / mean_spacing
    frequencies, magnitudes = amplitude_spectrum(
        np.asarray(trace.values, dtype=np.float64), sample_rate
    )
    if max_rate_hz is not None:
        keep = frequencies <= max_rate_hz
        if not keep.any():
            raise ValueError("max_rate_hz excludes every resolvable bin")
        frequencies = frequencies[keep]
        magnitudes = magnitudes[keep]
    peak_index = int(np.argmax(magnitudes))
    median = float(np.median(magnitudes))
    return SpectralPeak(
        frequency_hz=float(frequencies[peak_index]),
        magnitude=float(magnitudes[peak_index]),
        prominence=float(
            magnitudes[peak_index] / median if median > 0 else np.inf
        ),
    )
