"""Statistics used by the characterization experiments (Fig 2).

The paper quantifies each channel three ways: the Pearson correlation
between per-level mean readings and the activation level, the linear
fit of that relationship (whose slope, divided by the channel's LSB,
gives the "~40 LSBs per setting" resolution argument), and a relative
variation measure used for the headline "261x greater variations than
RO" comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.utils.validation import as_1d_float_array


def pearson(x, y) -> float:
    """Pearson correlation coefficient between two equal-length series."""
    x = as_1d_float_array(x, "x")
    y = as_1d_float_array(y, "y")
    if x.size != y.size:
        raise ValueError("series must have equal length")
    if x.size < 2:
        raise ValueError("need at least two points")
    if np.ptp(x) == 0 or np.ptp(y) == 0:
        # A constant series has no linear relationship to quantify.
        return 0.0
    return float(scipy_stats.pearsonr(x, y)[0])


@dataclass(frozen=True)
class LinearFit:
    """Ordinary-least-squares line through (x, y).

    Attributes:
        slope / intercept: the fitted line.
        r: Pearson correlation of the fit.
    """

    slope: float
    intercept: float
    r: float

    def predict(self, x) -> np.ndarray:
        """Evaluate the fitted line."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def linear_fit(x, y) -> LinearFit:
    """Least-squares linear fit of y on x."""
    x = as_1d_float_array(x, "x")
    y = as_1d_float_array(y, "y")
    if x.size != y.size or x.size < 2:
        raise ValueError("need two equal-length series of >= 2 points")
    result = scipy_stats.linregress(x, y)
    return LinearFit(
        slope=float(result.slope),
        intercept=float(result.intercept),
        r=float(result.rvalue),
    )


def lsb_per_step(level_means, lsb: float) -> float:
    """Average reading change per activation level, in channel LSBs.

    Fig 2's resolution argument: current moves ~40 LSBs (1 mA each)
    per 1k-instance group, power 1-2 LSBs (25 mW each), voltage less
    than one LSB (1.25 mV) across the whole sweep.
    """
    level_means = as_1d_float_array(level_means, "level_means")
    if level_means.size < 2:
        raise ValueError("need at least two levels")
    if lsb <= 0:
        raise ValueError("lsb must be > 0")
    slope = linear_fit(np.arange(level_means.size), level_means).slope
    return float(abs(slope) / lsb)


def relative_variation(values) -> float:
    """Peak-to-peak variation normalized by the mean magnitude.

    The paper's "variation" comparison: over the same 161-level sweep,
    the current channel's relative variation is ~261x the RO channel's.
    """
    values = as_1d_float_array(values, "values")
    if values.size < 2:
        raise ValueError("need at least two values")
    mean = np.mean(np.abs(values))
    if mean == 0:
        raise ValueError("relative variation undefined for zero-mean data")
    return float(np.ptp(values) / mean)


def variation_ratio(values_a, values_b) -> float:
    """How much more channel A varies than channel B (the 261x figure)."""
    return relative_variation(values_a) / relative_variation(values_b)
