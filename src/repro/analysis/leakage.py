"""Leakage assessment: TVLA-style Welch t-tests and SNR.

Standard side-channel evaluation methodology, applied to hwmon traces:

* **Welch's t-test** (the TVLA fixed-vs-fixed / fixed-vs-random
  methodology): do two populations of readings — e.g. collected under
  two different RSA keys — differ beyond noise?  |t| > 4.5 is the
  conventional detection threshold.
* **SNR** (Mangard's signal-to-noise ratio): variance of the class
  means over the mean of the class variances, quantifying how much of
  a channel's variation is victim-dependent.

These feed the leakage-assessment tests/benches and give downstream
users the standard vocabulary for comparing channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import as_1d_float_array

#: Conventional TVLA detection threshold.
TVLA_THRESHOLD = 4.5


@dataclass(frozen=True)
class TTestResult:
    """Welch's t-test outcome."""

    statistic: float
    degrees_of_freedom: float

    @property
    def leaks(self) -> bool:
        """True when |t| exceeds the TVLA threshold."""
        return abs(self.statistic) > TVLA_THRESHOLD


def welch_t_test(a, b) -> TTestResult:
    """Welch's unequal-variance t-test between two sample sets."""
    a = as_1d_float_array(a, "a")
    b = as_1d_float_array(b, "b")
    if a.size < 2 or b.size < 2:
        raise ValueError("need at least two samples per population")
    var_a = a.var(ddof=1)
    var_b = b.var(ddof=1)
    se_a = var_a / a.size
    se_b = var_b / b.size
    denominator = np.sqrt(se_a + se_b)
    if denominator == 0:
        # Identical constants: no evidence either way unless the means
        # differ, in which case leakage is total.
        statistic = 0.0 if a.mean() == b.mean() else np.inf
        return TTestResult(statistic=float(statistic),
                           degrees_of_freedom=float(a.size + b.size - 2))
    statistic = (a.mean() - b.mean()) / denominator
    dof_numerator = (se_a + se_b) ** 2
    dof_denominator = (
        se_a**2 / (a.size - 1) + se_b**2 / (b.size - 1)
    )
    dof = dof_numerator / dof_denominator if dof_denominator > 0 else 1.0
    return TTestResult(
        statistic=float(statistic), degrees_of_freedom=float(dof)
    )


def snr(groups: Sequence[np.ndarray]) -> float:
    """Mangard's SNR: Var(class means) / E(class variances).

    ``groups`` holds the readings collected under each victim class
    (e.g. one array per RSA key).  SNR >> 1 means class identity
    dominates the channel; SNR << 1 means noise does.
    """
    if len(groups) < 2:
        raise ValueError("need at least two classes")
    arrays = [as_1d_float_array(group, "group") for group in groups]
    if any(array.size < 2 for array in arrays):
        raise ValueError("need at least two samples per class")
    means = np.array([array.mean() for array in arrays])
    variances = np.array([array.var(ddof=1) for array in arrays])
    noise = variances.mean()
    if noise == 0:
        return np.inf if means.var() > 0 else 0.0
    return float(means.var() / noise)


def pairwise_tvla(groups: Sequence[np.ndarray]) -> np.ndarray:
    """|t| statistics for every adjacent pair of classes.

    For an ordered sweep (e.g. increasing Hamming weights) the adjacent
    pairs are the hardest to distinguish; this is the per-step leakage
    profile.
    """
    if len(groups) < 2:
        raise ValueError("need at least two classes")
    statistics = []
    for left, right in zip(groups, groups[1:]):
        statistics.append(abs(welch_t_test(left, right).statistic))
    return np.asarray(statistics)
