"""Statistics shared by the evaluation benches."""

from repro.analysis.leakage import (
    TVLA_THRESHOLD,
    TTestResult,
    pairwise_tvla,
    snr,
    welch_t_test,
)
from repro.analysis.spectral import (
    SpectralPeak,
    amplitude_spectrum,
    dominant_frequency,
    estimate_serving_rate,
)
from repro.analysis.distributions import (
    DistributionSummary,
    count_groups,
    overlap_fraction,
    pairwise_separable,
    summarize,
)
from repro.analysis.stats import (
    LinearFit,
    linear_fit,
    lsb_per_step,
    pearson,
    relative_variation,
    variation_ratio,
)

__all__ = [
    "TVLA_THRESHOLD",
    "TTestResult",
    "pairwise_tvla",
    "snr",
    "welch_t_test",
    "SpectralPeak",
    "amplitude_spectrum",
    "dominant_frequency",
    "estimate_serving_rate",
    "DistributionSummary",
    "count_groups",
    "overlap_fraction",
    "pairwise_separable",
    "summarize",
    "LinearFit",
    "linear_fit",
    "lsb_per_step",
    "pearson",
    "relative_variation",
    "variation_ratio",
]
