"""Classification metrics used by the fingerprinting evaluation."""

from __future__ import annotations

from typing import Optional

import numpy as np


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact matches (Table III's top-1)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have equal shapes")
    if y_true.size == 0:
        raise ValueError("cannot score an empty prediction set")
    return float(np.mean(y_true == y_pred))


def top_k_accuracy(
    y_true: np.ndarray, topk_predictions: np.ndarray, k: Optional[int] = None
) -> float:
    """Fraction of rows whose true label is in the top-k prediction list.

    ``topk_predictions`` has shape (n, k'), best first (the output of
    :meth:`RandomForestClassifier.predict_topk`); ``k`` optionally
    restricts to the first k columns.
    """
    y_true = np.asarray(y_true)
    topk_predictions = np.asarray(topk_predictions)
    if topk_predictions.ndim != 2:
        raise ValueError("topk_predictions must be 2-D (n, k)")
    if topk_predictions.shape[0] != y_true.shape[0]:
        raise ValueError("row counts differ")
    if k is not None:
        if not (1 <= k <= topk_predictions.shape[1]):
            raise ValueError(f"k must be in [1, {topk_predictions.shape[1]}]")
        topk_predictions = topk_predictions[:, :k]
    hits = (topk_predictions == y_true[:, np.newaxis]).any(axis=1)
    return float(np.mean(hits))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels: np.ndarray = None
) -> np.ndarray:
    """Confusion counts, rows = true class, columns = predicted class."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {value: i for i, value in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for true, predicted in zip(y_true, y_pred):
        matrix[index[true], index[predicted]] += 1
    return matrix
