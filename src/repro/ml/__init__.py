"""From-scratch ML stack: CART tree, random forest, CV, metrics."""

from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegressionClassifier, softmax
from repro.ml.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.streaming import OnlineSoftmaxClassifier
from repro.ml.tree import DecisionTreeClassifier, gini_impurity
from repro.ml.validation import (
    CrossValidationResult,
    PrequentialResult,
    cross_validate,
    prequential_evaluate,
    stratified_kfold_indices,
)

__all__ = [
    "RandomForestClassifier",
    "LogisticRegressionClassifier",
    "softmax",
    "KNeighborsClassifier",
    "OnlineSoftmaxClassifier",
    "PrequentialResult",
    "prequential_evaluate",
    "accuracy",
    "confusion_matrix",
    "top_k_accuracy",
    "DecisionTreeClassifier",
    "gini_impurity",
    "CrossValidationResult",
    "cross_validate",
    "stratified_kfold_indices",
]
