"""Cross-validation harness matching the paper's protocol.

§IV-B: "we perform a 10-fold cross-validation where, in each iteration,
9 folds serve as training data and the remaining fold is used for
testing."  Folds are stratified so every class appears in every fold —
with 39 classes and balanced trace sets this matches the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy, top_k_accuracy
from repro.utils.rng import RngLike, spawn
from repro.utils.validation import require_int_in_range


def stratified_kfold_indices(
    y: np.ndarray, n_folds: int, seed: RngLike = None
) -> List[np.ndarray]:
    """Split sample indices into ``n_folds`` class-stratified folds."""
    y = np.asarray(y)
    n_folds = require_int_in_range(n_folds, 2, y.size, "n_folds")
    rng = spawn(seed, "kfold")
    folds: List[List[int]] = [[] for _ in range(n_folds)]
    for value in np.unique(y):
        members = np.nonzero(y == value)[0]
        members = rng.permutation(members)
        for position, index in enumerate(members):
            folds[position % n_folds].append(int(index))
    return [np.asarray(sorted(fold), dtype=np.int64) for fold in folds]


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregated k-fold scores.

    Attributes:
        top1_per_fold / top5_per_fold: per-fold accuracies.
    """

    top1_per_fold: Tuple[float, ...]
    top5_per_fold: Tuple[float, ...]

    @property
    def top1(self) -> float:
        """Mean top-1 accuracy across folds (Table III first row)."""
        return float(np.mean(self.top1_per_fold))

    @property
    def top5(self) -> float:
        """Mean top-5 accuracy across folds (Table III second row)."""
        return float(np.mean(self.top5_per_fold))

    def __repr__(self) -> str:
        return (
            f"CrossValidationResult(top1={self.top1:.3f}, "
            f"top5={self.top5:.3f}, folds={len(self.top1_per_fold)})"
        )


def cross_validate(
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 10,
    classifier_factory: Callable[[], RandomForestClassifier] = None,
    seed: RngLike = None,
) -> CrossValidationResult:
    """Stratified k-fold CV of a forest on (X, y), scoring top-1/top-5.

    ``classifier_factory`` builds a fresh classifier per fold; the
    default is the paper's RForest(100 trees, depth 32).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if classifier_factory is None:
        fold_seed = spawn(seed, "cv-forests")

        def classifier_factory():
            return RandomForestClassifier(
                n_estimators=100, max_depth=32, seed=fold_seed
            )

    folds = stratified_kfold_indices(y, n_folds, seed=seed)
    top1_scores: List[float] = []
    top5_scores: List[float] = []
    all_indices = np.arange(y.size)
    for fold in folds:
        test_mask = np.zeros(y.size, dtype=bool)
        test_mask[fold] = True
        train = all_indices[~test_mask]
        classifier = classifier_factory()
        classifier.fit(X[train], y[train])
        top1_scores.append(accuracy(y[fold], classifier.predict(X[fold])))
        k = min(5, classifier.classes_.size)
        top5_scores.append(
            top_k_accuracy(y[fold], classifier.predict_topk(X[fold], k))
        )
    return CrossValidationResult(
        top1_per_fold=tuple(top1_scores), top5_per_fold=tuple(top5_scores)
    )
