"""Cross-validation harness matching the paper's protocol.

§IV-B: "we perform a 10-fold cross-validation where, in each iteration,
9 folds serve as training data and the remaining fold is used for
testing."  Folds are stratified so every class appears in every fold —
with 39 classes and balanced trace sets this matches the paper's setup.

Folds are independent fit-and-score tasks, so the harness exposes them
as such: :func:`make_fold_jobs` builds the ordered task list and
:func:`score_fold` executes one task.  :func:`cross_validate` runs the
jobs through :func:`repro.perf.parallel_map` (``workers=1`` is the
plain serial loop), and the Table III grid evaluator flattens the jobs
of *every* channel x duration cell into a single pool so folds from
fast cells never wait on slow ones.  Reproducibility contract: for
classifier factories whose products fit deterministically from
construction (integer seeds — the default), serial and parallel runs
produce identical scores at any worker count.  Factories that share a
live RNG across folds remain order-dependent and should stick to
``workers=1``.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy, top_k_accuracy
from repro.perf.config import resolve_workers
from repro.perf.executor import in_worker, parallel_map
from repro.perf.shm import publish_arrays, resolve_array
from repro.utils.rng import RngLike, derive_seed, spawn
from repro.utils.validation import require_int_in_range


def stratified_kfold_indices(
    y: np.ndarray, n_folds: int, seed: RngLike = None
) -> List[np.ndarray]:
    """Split sample indices into ``n_folds`` class-stratified folds.

    Fold assembly is vectorized (each fold takes every ``n_folds``-th
    member of each class's permutation, then one sort per fold) but
    consumes the RNG identically to the original per-sample loop, so
    the folds — and everything seeded downstream of them — are
    unchanged.
    """
    y = np.asarray(y)
    n_folds = require_int_in_range(n_folds, 2, y.size, "n_folds")
    rng = spawn(seed, "kfold")
    parts: List[List[np.ndarray]] = [[] for _ in range(n_folds)]
    for value in np.unique(y):
        members = rng.permutation(np.nonzero(y == value)[0])
        for fold in range(n_folds):
            parts[fold].append(members[fold::n_folds])
    return [
        np.sort(np.concatenate(part).astype(np.int64)) for part in parts
    ]


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregated k-fold scores.

    Attributes:
        top1_per_fold / top5_per_fold: per-fold accuracies.
    """

    top1_per_fold: Tuple[float, ...]
    top5_per_fold: Tuple[float, ...]

    @property
    def top1(self) -> float:
        """Mean top-1 accuracy across folds (Table III first row)."""
        return float(np.mean(self.top1_per_fold))

    @property
    def top5(self) -> float:
        """Mean top-5 accuracy across folds (Table III second row)."""
        return float(np.mean(self.top5_per_fold))

    def __repr__(self) -> str:
        return (
            f"CrossValidationResult(top1={self.top1:.3f}, "
            f"top5={self.top5:.3f}, folds={len(self.top1_per_fold)})"
        )


#: One fold's fit-and-score task: (classifier, X, y, train, test).
FoldJob = Tuple[RandomForestClassifier, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _default_fold_classifiers(
    n_folds: int, seed: RngLike
) -> List[RandomForestClassifier]:
    """The paper's RForest per fold, independently and stably seeded."""
    if isinstance(seed, np.random.Generator):
        fold_seeds = [int(s) for s in seed.integers(0, 1 << 62, size=n_folds)]
    else:
        fold_seeds = [
            derive_seed(seed, f"cv-forest-{index}") for index in range(n_folds)
        ]
    return [
        RandomForestClassifier(n_estimators=100, max_depth=32, seed=fold_seed)
        for fold_seed in fold_seeds
    ]


def make_fold_jobs(
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 10,
    classifier_factory: Callable[[], RandomForestClassifier] = None,
    seed: RngLike = None,
) -> List[FoldJob]:
    """Build the ordered fit-and-score task per stratified fold.

    Classifiers are constructed here, in fold order, in the calling
    process — so a factory's construction-time RNG consumption is
    identical no matter where the jobs later execute.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    folds = stratified_kfold_indices(y, n_folds, seed=seed)
    if classifier_factory is None:
        classifiers = _default_fold_classifiers(len(folds), seed)
    else:
        classifiers = [classifier_factory() for _ in folds]
    jobs: List[FoldJob] = []
    all_indices = np.arange(y.size)
    for classifier, fold in zip(classifiers, folds):
        test_mask = np.zeros(y.size, dtype=bool)
        test_mask[fold] = True
        train = all_indices[~test_mask]
        jobs.append((classifier, X, y, train, fold))
    return jobs


def share_fold_jobs(
    jobs: Sequence[FoldJob], stack: ExitStack, enabled: bool = True
) -> List[FoldJob]:
    """Swap each job's (X, y) for shared-memory descriptors.

    Folds of one CV run (and all cells of the Table III grid) reuse
    the same matrices, so each distinct (X, y) pair is published into
    shared memory exactly once — the fan-out then pickles descriptors
    and fold indices instead of a full matrix copy per fold.  The
    caller's ``stack`` owns the segments; unwind it only after the
    fan-out returns.  On platforms without shared memory this is the
    identity (``publish_arrays`` yields the arrays themselves).
    """
    cache = {}
    shared: List[FoldJob] = []
    for classifier, X, y, train, test in jobs:
        key = (id(X), id(y))
        if key not in cache:
            cache[key] = stack.enter_context(
                publish_arrays([X, y], enabled=enabled)
            )
        x_ref, y_ref = cache[key]
        shared.append((classifier, x_ref, y_ref, train, test))
    return shared


def score_fold(job: FoldJob) -> Tuple[float, float]:
    """Fit one fold's classifier and return its (top-1, top-5) scores.

    One ``predict_proba`` pass serves both scores — ``predict`` and
    ``predict_topk`` are thin argmax/argsort views over the same
    probability matrix, so running the forest twice per fold was pure
    waste.  ``X``/``y`` may arrive as arrays or as shared-memory
    descriptors (see :func:`share_fold_jobs`); the train/test fancy
    indexing copies out exactly the rows this fold touches either way.
    """
    classifier, x_ref, y_ref, train, test = job
    X = resolve_array(x_ref)
    y = resolve_array(y_ref)
    classifier.fit(X[train], y[train])
    proba = classifier.predict_proba(X[test])
    top1 = accuracy(
        y[test], classifier.classes_[np.argmax(proba, axis=1)]
    )
    k = min(5, classifier.classes_.size)
    order = np.argsort(-proba, axis=1, kind="stable")[:, :k]
    top5 = top_k_accuracy(y[test], classifier.classes_[order])
    return top1, top5


def collect_cv_result(
    fold_scores: Sequence[Tuple[float, float]]
) -> CrossValidationResult:
    """Assemble per-fold (top-1, top-5) pairs into a result."""
    return CrossValidationResult(
        top1_per_fold=tuple(score[0] for score in fold_scores),
        top5_per_fold=tuple(score[1] for score in fold_scores),
    )


def cross_validate(
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 10,
    classifier_factory: Callable[[], RandomForestClassifier] = None,
    seed: RngLike = None,
    workers: Optional[int] = None,
) -> CrossValidationResult:
    """Stratified k-fold CV of a forest on (X, y), scoring top-1/top-5.

    ``classifier_factory`` builds a fresh classifier per fold; the
    default is the paper's RForest(100 trees, depth 32), seeded
    independently per fold.  ``workers`` fans the folds out over
    processes (``None`` honors ``AMPEREBLEED_WORKERS``, default
    serial); scores are identical at any worker count for
    deterministic factories.
    """
    jobs = make_fold_jobs(
        X, y, n_folds=n_folds, classifier_factory=classifier_factory,
        seed=seed,
    )
    if resolve_workers(workers) > 1 and len(jobs) > 1 and not in_worker():
        with ExitStack() as stack:
            shared = share_fold_jobs(jobs, stack)
            return collect_cv_result(
                parallel_map(score_fold, shared, workers=workers)
            )
    return collect_cv_result(parallel_map(score_fold, jobs, workers=workers))


@dataclass(frozen=True)
class PrequentialResult:
    """Test-then-train scores of an online classifier over a stream.

    Attributes:
        top1_per_batch: accuracy of each mini-batch, scored *before*
            the model trained on it.
        batch_sizes: samples per mini-batch (weights for the mean).
    """

    top1_per_batch: Tuple[float, ...]
    batch_sizes: Tuple[int, ...]

    @property
    def n_samples(self) -> int:
        """Total samples scored."""
        return int(sum(self.batch_sizes))

    @property
    def top1(self) -> float:
        """Sample-weighted prequential accuracy over the whole stream."""
        weights = np.asarray(self.batch_sizes, dtype=np.float64)
        scores = np.asarray(self.top1_per_batch, dtype=np.float64)
        return float((scores * weights).sum() / weights.sum())

    def __repr__(self) -> str:
        return (
            f"PrequentialResult(top1={self.top1:.3f}, "
            f"batches={len(self.top1_per_batch)}, "
            f"samples={self.n_samples})"
        )


def prequential_evaluate(
    classifier,
    X: np.ndarray,
    y: np.ndarray,
    batch_size: int = 1,
) -> PrequentialResult:
    """Prequential (test-then-train) evaluation of an online classifier.

    The streaming counterpart of :func:`cross_validate`: feature rows
    arrive in stream order, each mini-batch is first *scored* against
    the model state built from everything before it and only then
    folded in with ``partial_fit`` — so every sample is an honest
    out-of-sample test and no held-out split is needed.  Deterministic
    for deterministic classifiers: same (X, y, batch order) → same
    scores.

    ``classifier`` needs ``predict`` and ``partial_fit`` (e.g.
    :class:`~repro.ml.streaming.OnlineSoftmaxClassifier`).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.shape != (X.shape[0],):
        raise ValueError("y must be 1-D with one label per row of X")
    batch_size = require_int_in_range(
        batch_size, 1, max(1, X.shape[0]), "batch_size"
    )
    scores: List[float] = []
    sizes: List[int] = []
    for start in range(0, X.shape[0], batch_size):
        batch_X = X[start:start + batch_size]
        batch_y = y[start:start + batch_size]
        scores.append(accuracy(batch_y, classifier.predict(batch_X)))
        classifier.partial_fit(batch_X, batch_y)
        sizes.append(int(batch_y.size))
    return PrequentialResult(
        top1_per_batch=tuple(scores), batch_sizes=tuple(sizes)
    )
