"""Random forest built on the from-scratch CART tree.

Matches the paper's classifier configuration (§IV-B): 100 trees,
maximum depth 32, Gini splitting, bootstrap sampling "so each tree is
trained on a unique subset of data by selecting samples with
replacement", with sqrt-feature subsampling per split (the standard
random-forest recipe the text's RForest refers to).

Tree fitting is embarrassingly parallel and the forest exploits it:
``fit`` draws one integer seed per tree in a single atomic RNG call,
then grows every tree from its own ``default_rng(tree_seed)``.  Each
tree is therefore a pure function of ``(X, y, params, tree_seed)``,
so serial and parallel fits — at any worker count — produce
bit-identical forests (trees, importances, and predictions).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

import threading

from repro.ml.tree import DecisionTreeClassifier
from repro.perf.config import resolve_workers
from repro.perf.executor import in_worker, parallel_map
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_int_in_range

#: Fit data shared with forked pool workers (set just before fan-out,
#: inherited copy-on-write, so tree tasks only carry their seed).
#: Guarded by _FIT_LOCK; the serial path never touches it.
_FIT_CONTEXT: Optional[Tuple] = None
_FIT_LOCK = threading.Lock()


def _grow_tree(X, y, params, tree_seed) -> DecisionTreeClassifier:
    """Grow one tree deterministically from its integer seed."""
    max_depth, max_features, min_samples_leaf, bootstrap = params
    rng = ensure_rng(int(tree_seed))
    n = X.shape[0]
    if bootstrap:
        sample = rng.integers(0, n, size=n)
    else:
        sample = np.arange(n)
    tree = DecisionTreeClassifier(
        max_depth=max_depth,
        max_features=max_features,
        min_samples_leaf=min_samples_leaf,
        seed=rng,
    )
    tree.fit(X[sample], y[sample])
    return tree


def _grow_tree_task(tree_seed) -> DecisionTreeClassifier:
    """Pool-worker entry: fit data arrives via the forked context."""
    X, y, params = _FIT_CONTEXT
    return _grow_tree(X, y, params, tree_seed)


class RandomForestClassifier:
    """Bagged CART ensemble with probability averaging.

    Args:
        n_estimators: trees in the forest (paper: 100).
        max_depth: per-tree depth cap (paper: 32).
        max_features: per-split feature subsample (default sqrt).
        min_samples_leaf: smallest allowed leaf.
        bootstrap: draw each tree's training set with replacement.
        seed: RNG seed for bootstraps and feature subsampling.
        n_jobs: worker processes for tree fitting; ``None`` honors the
            ``AMPEREBLEED_WORKERS`` environment variable (serial when
            unset), ``0``/negative uses every CPU.  The fitted forest
            is identical at every worker count.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 32,
        max_features: Union[str, int, float, None] = "sqrt",
        min_samples_leaf: int = 1,
        bootstrap: bool = True,
        seed: RngLike = None,
        n_jobs: Optional[int] = None,
    ):
        self.n_estimators = require_int_in_range(
            n_estimators, 1, 100_000, "n_estimators"
        )
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.bootstrap = bool(bootstrap)
        self.n_jobs = n_jobs
        self._rng = ensure_rng(seed)
        self.trees_: List[DecisionTreeClassifier] = []
        self.classes_: Optional[np.ndarray] = None
        self.feature_importances_: Optional[np.ndarray] = None

    def _tree_params(self) -> Tuple:
        return (
            self.max_depth,
            self.max_features,
            self.min_samples_leaf,
            self.bootstrap,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit all trees on (bootstrapped) views of the data."""
        global _FIT_CONTEXT
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one label per row of X")
        self.classes_ = np.unique(y)
        # One atomic draw decouples tree seeds from execution order.
        tree_seeds = self._rng.integers(
            0, np.iinfo(np.int64).max, size=self.n_estimators
        )
        params = self._tree_params()
        workers = resolve_workers(self.n_jobs)
        if workers <= 1 or self.n_estimators <= 1 or in_worker():
            self.trees_ = [
                _grow_tree(X, y, params, seed) for seed in tree_seeds
            ]
        else:
            with _FIT_LOCK:
                _FIT_CONTEXT = (X, y, params)
                try:
                    self.trees_ = parallel_map(
                        _grow_tree_task,
                        tree_seeds,
                        workers=workers,
                        chunksize=max(1, self.n_estimators // 32),
                    )
                finally:
                    _FIT_CONTEXT = None
        importances = np.zeros(X.shape[1])
        for tree in self.trees_:
            if tree.feature_importances_ is not None:
                importances += tree.feature_importances_
        self.feature_importances_ = importances / self.n_estimators
        return self

    def _check_fitted(self):
        if not self.trees_:
            raise RuntimeError("forest is not fitted; call fit() first")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Forest probability: average of tree probabilities, with each
        tree's (possibly partial) class set mapped onto the forest's."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        n_classes = self.classes_.size
        total = np.zeros((X.shape[0], n_classes))
        class_index = {value: i for i, value in enumerate(self.classes_)}
        for tree in self.trees_:
            proba = tree.predict_proba(X)
            columns = [class_index[value] for value in tree.classes_]
            total[:, columns] += proba
        return total / self.n_estimators

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority (probability-averaged) class per row."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_topk(self, X: np.ndarray, k: int) -> np.ndarray:
        """The k most probable classes per row, best first."""
        self._check_fitted()
        k = require_int_in_range(k, 1, self.classes_.size, "k")
        proba = self.predict_proba(X)
        order = np.argsort(-proba, axis=1, kind="stable")[:, :k]
        return self.classes_[order]

    def __repr__(self) -> str:
        return (
            f"RandomForestClassifier(n_estimators={self.n_estimators}, "
            f"max_depth={self.max_depth})"
        )
