"""Random forest built on the from-scratch CART tree.

Matches the paper's classifier configuration (§IV-B): 100 trees,
maximum depth 32, Gini splitting, bootstrap sampling "so each tree is
trained on a unique subset of data by selecting samples with
replacement", with sqrt-feature subsampling per split (the standard
random-forest recipe the text's RForest refers to).

Tree fitting is embarrassingly parallel and the forest exploits it:
``fit`` draws one integer seed per tree in a single atomic RNG call,
then grows every tree from its own ``default_rng(tree_seed)``.  Each
tree is therefore a pure function of ``(X, y, params, tree_seed)``,
so serial and parallel fits — at any worker count — produce
bit-identical forests (trees, importances, and predictions).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.ml.tree import DecisionTreeClassifier
from repro.perf.config import resolve_workers
from repro.perf.executor import in_worker, parallel_map
from repro.perf.shm import publish_arrays, resolve_array
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_int_in_range


def _grow_tree(X, encoded, classes, params, tree_seed) -> DecisionTreeClassifier:
    """Grow one tree deterministically from its integer seed.

    Labels arrive pre-encoded as integer class codes (the forest runs
    ``np.unique`` once instead of every tree re-uniquing label
    strings); the code↔label map is monotone, so the grown tree is
    identical and its ``classes_`` remap back to the real labels.
    """
    max_depth, max_features, min_samples_leaf, bootstrap = params
    rng = ensure_rng(int(tree_seed))
    n = X.shape[0]
    if bootstrap:
        sample = rng.integers(0, n, size=n)
    else:
        sample = np.arange(n)
    tree = DecisionTreeClassifier(
        max_depth=max_depth,
        max_features=max_features,
        min_samples_leaf=min_samples_leaf,
        seed=rng,
    )
    tree.fit(X[sample], encoded[sample])
    tree.classes_ = classes[tree.classes_]
    return tree


def _grow_tree_task(task) -> DecisionTreeClassifier:
    """Pool-worker entry: fit matrices arrive as shm descriptors.

    The task tuple carries :class:`repro.perf.shm.ShmSlice` handles
    (or the raw arrays on the no-shm fallback) plus this tree's seed;
    :func:`resolve_array` maps the shared segment read-only, and the
    bootstrap's fancy indexing copies exactly the rows the tree needs.
    """
    x_ref, encoded_ref, classes_ref, params, tree_seed = task
    return _grow_tree(
        resolve_array(x_ref),
        resolve_array(encoded_ref),
        resolve_array(classes_ref),
        params,
        tree_seed,
    )


class RandomForestClassifier:
    """Bagged CART ensemble with probability averaging.

    Args:
        n_estimators: trees in the forest (paper: 100).
        max_depth: per-tree depth cap (paper: 32).
        max_features: per-split feature subsample (default sqrt).
        min_samples_leaf: smallest allowed leaf.
        bootstrap: draw each tree's training set with replacement.
        seed: RNG seed for bootstraps and feature subsampling.
        n_jobs: worker processes for tree fitting; ``None`` honors the
            ``AMPEREBLEED_WORKERS`` environment variable (serial when
            unset), ``0``/negative uses every CPU.  The fitted forest
            is identical at every worker count.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 32,
        max_features: Union[str, int, float, None] = "sqrt",
        min_samples_leaf: int = 1,
        bootstrap: bool = True,
        seed: RngLike = None,
        n_jobs: Optional[int] = None,
    ):
        self.n_estimators = require_int_in_range(
            n_estimators, 1, 100_000, "n_estimators"
        )
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.bootstrap = bool(bootstrap)
        self.n_jobs = n_jobs
        self._rng = ensure_rng(seed)
        self.trees_: List[DecisionTreeClassifier] = []
        self.classes_: Optional[np.ndarray] = None
        self.feature_importances_: Optional[np.ndarray] = None
        # Padded forest-level node arrays for batched prediction,
        # built lazily on first predict after a fit.
        self._aligned_probas: Optional[Tuple[np.ndarray, ...]] = None

    def _tree_params(self) -> Tuple:
        return (
            self.max_depth,
            self.max_features,
            self.min_samples_leaf,
            self.bootstrap,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit all trees on (bootstrapped) views of the data."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one label per row of X")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        # One atomic draw decouples tree seeds from execution order.
        tree_seeds = self._rng.integers(
            0, np.iinfo(np.int64).max, size=self.n_estimators
        )
        params = self._tree_params()
        workers = resolve_workers(self.n_jobs)
        if workers <= 1 or self.n_estimators <= 1 or in_worker():
            self.trees_ = [
                _grow_tree(X, encoded, self.classes_, params, seed)
                for seed in tree_seeds
            ]
        else:
            # The fit matrices are published once in shared memory;
            # every tree task carries only descriptors plus its seed,
            # so fanning 100 trees out pickles kilobytes, not copies
            # of X per chunk.
            with publish_arrays([X, encoded, self.classes_]) as (
                x_ref,
                encoded_ref,
                classes_ref,
            ):
                self.trees_ = parallel_map(
                    _grow_tree_task,
                    [
                        (x_ref, encoded_ref, classes_ref, params, seed)
                        for seed in tree_seeds
                    ],
                    workers=workers,
                    chunksize=max(1, self.n_estimators // 32),
                )
        importances = np.zeros(X.shape[1])
        for tree in self.trees_:
            if tree.feature_importances_ is not None:
                importances += tree.feature_importances_
        self.feature_importances_ = importances / self.n_estimators
        self._aligned_probas = None
        return self

    def _check_fitted(self):
        if not self.trees_:
            raise RuntimeError("forest is not fitted; call fit() first")

    def _batch_arrays(self) -> Tuple[np.ndarray, ...]:
        """Forest-level node arrays for batched prediction.

        Every tree's flat node arrays are padded to the widest tree:
        children/features pad with -1, thresholds with NaN, and each
        tree's ``(node_count, n_classes)`` probability matrix scatters
        into the forest-wide class columns (bootstrap trees can miss
        rare classes).  Built once per fit; ``predict_proba`` then
        walks all trees simultaneously instead of looping per tree.
        Padding with exact zeros keeps the averaged probabilities
        bit-identical to the old accumulate-into-columns loop (tree
        probabilities are non-negative, so ``x + 0.0`` is exact).
        """
        if self._aligned_probas is None:
            n_trees = len(self.trees_)
            n_classes = self.classes_.size
            class_index = {
                value: i for i, value in enumerate(self.classes_)
            }
            width = max(tree.node_count for tree in self.trees_)
            left = np.full((n_trees, width), -1, dtype=np.int64)
            right = np.full((n_trees, width), -1, dtype=np.int64)
            feature = np.zeros((n_trees, width), dtype=np.int64)
            threshold = np.full((n_trees, width), np.nan)
            proba = np.zeros((n_trees, width, n_classes))
            for position, tree in enumerate(self.trees_):
                count = tree.node_count
                left[position, :count] = tree._left_arr
                right[position, :count] = tree._right_arr
                feature[position, :count] = tree._feature_arr
                threshold[position, :count] = tree._threshold_arr
                columns = [class_index[value] for value in tree.classes_]
                proba[position][
                    np.arange(count)[:, np.newaxis], columns
                ] = tree.node_proba_matrix
            self._aligned_probas = (left, right, feature, threshold, proba)
        return self._aligned_probas

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Forest probability: average of tree probabilities, with each
        tree's (possibly partial) class set mapped onto the forest's.

        Batched: all trees descend together over a ``(n_trees,
        n_samples)`` node frontier, the leaf probabilities gather into
        one ``(n_trees, n_samples, n_classes)`` tensor, and the tree
        axis reduces in one pass (an axis-0 reduce accumulates
        sequentially, matching the old per-tree loop bit for bit).
        """
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        left, right, feature, threshold, proba = self._batch_arrays()
        n_trees = len(self.trees_)
        n_rows = X.shape[0]
        tree_idx = np.arange(n_trees)[:, np.newaxis]
        row_idx = np.arange(n_rows)[np.newaxis, :]
        nodes = np.zeros((n_trees, n_rows), dtype=np.int64)
        while True:
            current_left = left[tree_idx, nodes]
            interior = current_left >= 0
            if not interior.any():
                break
            # Leaf rows read feature -1 / threshold NaN; the NaN
            # comparison is False and ``interior`` pins them in place.
            values = X[row_idx, feature[tree_idx, nodes]]
            goes_left = values <= threshold[tree_idx, nodes]
            descended = np.where(
                goes_left, current_left, right[tree_idx, nodes]
            )
            nodes = np.where(interior, descended, nodes)
        stacked = proba[tree_idx, nodes]
        total = np.add.reduce(stacked, axis=0)
        return total / self.n_estimators

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority (probability-averaged) class per row."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_topk(self, X: np.ndarray, k: int) -> np.ndarray:
        """The k most probable classes per row, best first."""
        self._check_fitted()
        k = require_int_in_range(k, 1, self.classes_.size, "k")
        proba = self.predict_proba(X)
        order = np.argsort(-proba, axis=1, kind="stable")[:, :k]
        return self.classes_[order]

    def __repr__(self) -> str:
        return (
            f"RandomForestClassifier(n_estimators={self.n_estimators}, "
            f"max_depth={self.max_depth})"
        )
