"""Multinomial logistic regression: the linear fingerprinting baseline.

Softmax regression trained by full-batch gradient descent with L2
regularization — deliberately minimal, used by the classifier-ablation
bench to show that even a linear decision surface extracts most of the
fingerprinting signal from the current channel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import (
    require_int_in_range,
    require_non_negative,
    require_positive,
)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegressionClassifier:
    """Softmax regression with gradient descent.

    Args:
        learning_rate: gradient step size.
        n_iterations: full-batch steps.
        l2: ridge penalty on the weights (not the bias).
        standardize: z-score features from training statistics (raw
            hwmon readings span hundreds of mA; scaling is essential
            for a fixed learning rate).
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 300,
        l2: float = 1e-3,
        standardize: bool = True,
    ):
        self.learning_rate = require_positive(learning_rate, "learning_rate")
        self.n_iterations = require_int_in_range(
            n_iterations, 1, 10_000_000, "n_iterations"
        )
        self.l2 = require_non_negative(l2, "l2")
        self.standardize = bool(standardize)
        self.classes_: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._bias: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def _prepare(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if self._mean is not None:
            X = (X - self._mean) / self._scale
        return X

    def fit(
        self, X: np.ndarray, y: np.ndarray
    ) -> "LogisticRegressionClassifier":
        """Train on (X, y) by full-batch gradient descent."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one label per row of X")
        if self.standardize:
            self._mean = X.mean(axis=0)
            scale = X.std(axis=0)
            self._scale = np.where(scale > 0, scale, 1.0)
        else:
            self._mean = np.zeros(X.shape[1])
            self._scale = np.ones(X.shape[1])
        X = self._prepare(X)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        n, d = X.shape
        k = self.classes_.size
        one_hot = np.zeros((n, k))
        one_hot[np.arange(n), encoded] = 1.0
        self._weights = np.zeros((d, k))
        self._bias = np.zeros(k)
        for _ in range(self.n_iterations):
            proba = softmax(X @ self._weights + self._bias)
            gradient_logits = (proba - one_hot) / n
            gradient_weights = X.T @ gradient_logits + self.l2 * self._weights
            gradient_bias = gradient_logits.sum(axis=0)
            self._weights -= self.learning_rate * gradient_weights
            self._bias -= self.learning_rate * gradient_bias
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax class probabilities per row."""
        if self._weights is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        X = self._prepare(X)
        if X.shape[1] != self._weights.shape[0]:
            raise ValueError(
                f"X must have {self._weights.shape[0]} features, "
                f"got {X.shape[1]}"
            )
        return softmax(X @ self._weights + self._bias)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_topk(self, X: np.ndarray, k: int) -> np.ndarray:
        """The k most probable classes per row, best first."""
        k = require_int_in_range(k, 1, self.classes_.size, "k")
        proba = self.predict_proba(X)
        order = np.argsort(-proba, axis=1, kind="stable")[:, :k]
        return self.classes_[order]

    def __repr__(self) -> str:
        return (
            f"LogisticRegressionClassifier(lr={self.learning_rate}, "
            f"iters={self.n_iterations}, l2={self.l2})"
        )
