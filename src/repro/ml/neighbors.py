"""k-nearest-neighbors classifier: the simplest fingerprinting baseline.

The paper picks a random forest for its suitability "for handling
high-dimensional data and identifying feature importance"; the
classifier-ablation bench contrasts it with kNN (and the linear model
in :mod:`repro.ml.linear`) to show the channel — not the classifier —
carries the attack.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import require_int_in_range, require_one_of


class KNeighborsClassifier:
    """Brute-force kNN with majority voting.

    Args:
        n_neighbors: votes per prediction.
        metric: ``"euclidean"`` or ``"manhattan"``.
    """

    def __init__(self, n_neighbors: int = 5, metric: str = "euclidean"):
        self.n_neighbors = require_int_in_range(
            n_neighbors, 1, 1_000_000, "n_neighbors"
        )
        self.metric = require_one_of(
            metric, ("euclidean", "manhattan"), "metric"
        )
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        """Memorize the training set."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one label per row of X")
        if X.shape[0] < self.n_neighbors:
            raise ValueError(
                f"need at least n_neighbors={self.n_neighbors} samples"
            )
        self._X = X
        self.classes_, self._y = np.unique(y, return_inverse=True)
        return self

    def _distances(self, X: np.ndarray) -> np.ndarray:
        if self.metric == "euclidean":
            # (a-b)^2 = a^2 - 2ab + b^2, vectorized.
            aa = (X**2).sum(axis=1)[:, np.newaxis]
            bb = (self._X**2).sum(axis=1)[np.newaxis, :]
            return np.maximum(aa - 2 * X @ self._X.T + bb, 0.0)
        return np.abs(
            X[:, np.newaxis, :] - self._X[np.newaxis, :, :]
        ).sum(axis=2)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Neighbor-vote fractions per class."""
        if self._X is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"X must have shape (n, {self._X.shape[1]}), got {X.shape}"
            )
        distances = self._distances(X)
        neighbor_index = np.argpartition(
            distances, self.n_neighbors - 1, axis=1
        )[:, : self.n_neighbors]
        votes = self._y[neighbor_index]
        proba = np.zeros((X.shape[0], self.classes_.size))
        for row in range(X.shape[0]):
            counts = np.bincount(votes[row], minlength=self.classes_.size)
            proba[row] = counts / self.n_neighbors
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote class per row."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_topk(self, X: np.ndarray, k: int) -> np.ndarray:
        """The k best-voted classes per row, best first."""
        k = require_int_in_range(k, 1, self.classes_.size, "k")
        proba = self.predict_proba(X)
        order = np.argsort(-proba, axis=1, kind="stable")[:, :k]
        return self.classes_[order]

    def __repr__(self) -> str:
        return (
            f"KNeighborsClassifier(n_neighbors={self.n_neighbors}, "
            f"metric={self.metric!r})"
        )
