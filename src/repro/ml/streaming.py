"""Online learning for the streaming analysis plane.

:class:`OnlineSoftmaxClassifier` is the partial-fit counterpart of
:class:`~repro.ml.linear.LogisticRegressionClassifier`: the same
softmax decision surface, trained one mini-batch at a time so a live
monitor can keep adapting while the sampler records.  Updates are
seed-deterministic — weight initialization draws from the repo's
seeded RNG policy and every other step is a pure function of the data
order — so a replayed stream reproduces the exact same model.

Feature standardization is maintained online (Welford running
mean/variance) because a stream has no training set to take statistics
from up front; the running statistics are part of the deterministic
state and evolve identically under any chunking of the same sample
order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.linear import softmax
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import (
    require_int_in_range,
    require_non_negative,
    require_positive,
)

__all__ = ["OnlineSoftmaxClassifier"]


class OnlineSoftmaxClassifier:
    """Softmax regression trained by streaming mini-batch SGD.

    Unlike the batch classifiers, the class universe must be declared
    up front — a stream cannot retroactively grow its weight matrix
    without invalidating earlier updates.

    Args:
        classes: every label the stream may carry (deduplicated and
            sorted, matching ``np.unique`` order of the batch path).
        n_features: feature-row width (the extractor's ``n_features``).
        learning_rate: SGD step size per mini-batch.
        l2: ridge penalty on the weights (not the bias).
        seed: weight-initialization seed (``None`` normalizes to 0 per
            the repo seed policy).
        init_scale: standard deviation of the initial random weights;
            0 starts from exact zeros.
    """

    def __init__(
        self,
        classes: Sequence,
        n_features: int,
        learning_rate: float = 0.1,
        l2: float = 1e-4,
        seed: RngLike = None,
        init_scale: float = 0.01,
    ):
        self.classes_ = np.unique(np.asarray(classes))
        if self.classes_.size < 2:
            raise ValueError("need at least two classes")
        n_features = require_int_in_range(
            n_features, 1, 1_000_000, "n_features"
        )
        self.learning_rate = require_positive(learning_rate, "learning_rate")
        self.l2 = require_non_negative(l2, "l2")
        init_scale = require_non_negative(init_scale, "init_scale")
        rng = ensure_rng(seed)
        k = self.classes_.size
        if init_scale > 0:
            self._weights = init_scale * rng.standard_normal((n_features, k))
        else:
            self._weights = np.zeros((n_features, k))
        self._bias = np.zeros(k)
        # Welford running statistics for online standardization.
        self._mean = np.zeros(n_features)
        self._m2 = np.zeros(n_features)
        self._count = 0

    @property
    def n_features(self) -> int:
        """Feature-row width this classifier was built for."""
        return int(self._weights.shape[0])

    @property
    def samples_seen(self) -> int:
        """Samples folded into the model so far."""
        return self._count

    def _check(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ValueError(
                f"X must be 2-D with {self.n_features} features, "
                f"got shape {X.shape}"
            )
        return X

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        if self._count < 2:
            return X - self._mean
        scale = np.sqrt(self._m2 / self._count)
        return (X - self._mean) / np.where(scale > 0, scale, 1.0)

    def _update_stats(self, X: np.ndarray) -> None:
        # Chan et al. parallel-Welford merge of the batch moments into
        # the running moments; batch-size-invariant up to float
        # rounding, deterministic for a fixed chunking.
        n = X.shape[0]
        batch_mean = X.mean(axis=0)
        batch_m2 = ((X - batch_mean) ** 2).sum(axis=0)
        if self._count == 0:
            self._mean = batch_mean
            self._m2 = batch_m2
            self._count = n
            return
        total = self._count + n
        delta = batch_mean - self._mean
        self._mean = self._mean + delta * (n / total)
        self._m2 = (
            self._m2 + batch_m2 + delta**2 * (self._count * n / total)
        )
        self._count = total

    def partial_fit(
        self, X: np.ndarray, y: np.ndarray
    ) -> "OnlineSoftmaxClassifier":
        """Fold one mini-batch in: update statistics, take one SGD step."""
        X = self._check(X)
        y = np.asarray(y)
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one label per row of X")
        encoded = np.searchsorted(self.classes_, y)
        if (
            np.any(encoded >= self.classes_.size)
            or np.any(self.classes_[encoded] != y)
        ):
            raise ValueError("y contains labels outside the declared classes")
        self._update_stats(X)
        Xs = self._standardize(X)
        n, k = X.shape[0], self.classes_.size
        one_hot = np.zeros((n, k))
        one_hot[np.arange(n), encoded] = 1.0
        proba = softmax(Xs @ self._weights + self._bias)
        gradient_logits = (proba - one_hot) / n
        gradient_weights = Xs.T @ gradient_logits + self.l2 * self._weights
        self._weights = self._weights - self.learning_rate * gradient_weights
        self._bias = self._bias - self.learning_rate * gradient_logits.sum(
            axis=0
        )
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax class probabilities per row, under current weights."""
        Xs = self._standardize(self._check(X))
        return softmax(Xs @ self._weights + self._bias)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_topk(self, X: np.ndarray, k: int) -> np.ndarray:
        """The k most probable classes per row, best first."""
        k = require_int_in_range(k, 1, self.classes_.size, "k")
        proba = self.predict_proba(X)
        order = np.argsort(-proba, axis=1, kind="stable")[:, :k]
        return self.classes_[order]

    def __repr__(self) -> str:
        return (
            f"OnlineSoftmaxClassifier(classes={self.classes_.size}, "
            f"features={self.n_features}, lr={self.learning_rate}, "
            f"l2={self.l2}, seen={self._count})"
        )
