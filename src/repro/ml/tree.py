"""CART decision tree with Gini impurity, implemented on numpy.

The paper's fingerprinting classifier is a random forest "with 100
trees and ... maximum depth ... 32", using "Gini impurity as the
splitting criterion" (§IV-B).  scikit-learn is not available offline,
so the tree (and the forest in :mod:`repro.ml.forest`) is implemented
from scratch: exact greedy CART with threshold splits, per-node random
feature subsampling, and vectorized split search via class-count
prefix sums over sorted feature columns.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_int_in_range


def gini_impurity(counts: np.ndarray) -> np.ndarray:
    """Gini impurity of class-count vectors (last axis = classes)."""
    counts = np.asarray(counts, dtype=np.float64)
    totals = counts.sum(axis=-1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        proportions = np.where(totals > 0, counts / totals, 0.0)
    return 1.0 - (proportions**2).sum(axis=-1)


def _resolve_max_features(max_features, n_features: int) -> int:
    if max_features is None or max_features == "all":
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(max_features, (int, np.integer)):
        return require_int_in_range(
            int(max_features), 1, n_features, "max_features"
        )
    if isinstance(max_features, float):
        if not (0.0 < max_features <= 1.0):
            raise ValueError("fractional max_features must be in (0, 1]")
        return max(1, int(max_features * n_features))
    raise ValueError(f"unsupported max_features: {max_features!r}")


class DecisionTreeClassifier:
    """A greedy CART classifier.

    Args:
        max_depth: maximum tree depth (root = depth 0).
        min_samples_split: smallest node that may be split further.
        min_samples_leaf: smallest allowed child node.
        max_features: features examined per split — ``"sqrt"`` (the
            random-forest default), ``"log2"``, ``"all"``/``None``, an
            integer count, or a fraction.
        seed: RNG for the per-node feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 32,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, float, None] = None,
        seed: RngLike = None,
    ):
        self.max_depth = require_int_in_range(max_depth, 1, 10_000, "max_depth")
        self.min_samples_split = require_int_in_range(
            min_samples_split, 2, 1 << 31, "min_samples_split"
        )
        self.min_samples_leaf = require_int_in_range(
            min_samples_leaf, 1, 1 << 31, "min_samples_leaf"
        )
        self.max_features = max_features
        self._rng = ensure_rng(seed)
        # Flat node arrays, filled during fit().
        self._children_left: List[int] = []
        self._children_right: List[int] = []
        self._split_feature: List[int] = []
        self._split_threshold: List[float] = []
        self._node_proba: List[np.ndarray] = []
        self.classes_: Optional[np.ndarray] = None
        self.n_features_: Optional[int] = None
        self.feature_importances_: Optional[np.ndarray] = None

    # ----------------------------------------------------------- fit

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Grow the tree on data ``X`` (n, d) and labels ``y`` (n,)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one label per row of X")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        n_classes = self.classes_.size
        self._children_left = []
        self._children_right = []
        self._split_feature = []
        self._split_threshold = []
        self._node_proba = []
        importances = np.zeros(self.n_features_)

        n_subset = _resolve_max_features(self.max_features, self.n_features_)

        def new_node(counts: np.ndarray) -> int:
            index = len(self._children_left)
            self._children_left.append(-1)
            self._children_right.append(-1)
            self._split_feature.append(-1)
            self._split_threshold.append(np.nan)
            self._node_proba.append(counts / counts.sum())
            return index

        # Iterative depth-first growth (avoids recursion limits at
        # depth 32 x wide trees).
        stack: List[Tuple[np.ndarray, int, int]] = []
        root_counts = np.bincount(encoded, minlength=n_classes).astype(float)
        root = new_node(root_counts)
        stack.append((np.arange(X.shape[0]), root, 0))

        while stack:
            indices, node, depth = stack.pop()
            counts = self._node_proba[node] * indices.size
            if (
                depth >= self.max_depth
                or indices.size < self.min_samples_split
                or np.count_nonzero(counts) <= 1
            ):
                continue
            split = self._best_split(
                X, encoded, indices, n_classes, n_subset
            )
            if split is None:
                continue
            feature, threshold, gain, left_idx, right_idx = split
            self._split_feature[node] = feature
            self._split_threshold[node] = threshold
            importances[feature] += gain * indices.size
            left_counts = np.bincount(
                encoded[left_idx], minlength=n_classes
            ).astype(float)
            right_counts = np.bincount(
                encoded[right_idx], minlength=n_classes
            ).astype(float)
            left = new_node(left_counts)
            right = new_node(right_counts)
            self._children_left[node] = left
            self._children_right[node] = right
            stack.append((left_idx, left, depth + 1))
            stack.append((right_idx, right, depth + 1))

        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    def _best_split(
        self,
        X: np.ndarray,
        encoded: np.ndarray,
        indices: np.ndarray,
        n_classes: int,
        n_subset: int,
    ):
        """Exact best Gini split over a random feature subset.

        Returns ``(feature, threshold, impurity_decrease, left, right)``
        or ``None`` if no valid split exists.
        """
        n = indices.size
        labels = encoded[indices]
        # Work only with the classes present in this node: deep nodes
        # hold few classes, which shrinks the prefix-sum matrices.
        present, labels = np.unique(labels, return_inverse=True)
        n_present = present.size
        parent_counts = np.bincount(labels, minlength=n_present).astype(float)
        parent_gini = gini_impurity(parent_counts)

        # Split-search scaffolding, built once per node and reordered
        # per candidate feature: the one-hot label matrix (reindexed
        # into a scratch buffer, then prefix-summed in place) and the
        # size-validity mask, which does not depend on the feature.
        one_hot = np.zeros((n, n_present))
        one_hot[np.arange(n), labels] = 1.0
        scratch = np.empty_like(one_hot)
        left_sizes = np.arange(1, n)
        right_sizes = n - left_sizes
        size_valid = (left_sizes >= self.min_samples_leaf) & (
            right_sizes >= self.min_samples_leaf
        )
        if not size_valid.any():
            return None

        features = self._rng.choice(
            self.n_features_, size=n_subset, replace=False
        )
        best = None
        best_gain = 1e-12
        for feature in features:
            column = X[indices, feature]
            order = np.argsort(column, kind="stable")
            sorted_values = column[order]
            # Candidate split positions: between distinct values only.
            distinct = sorted_values[1:] != sorted_values[:-1]
            if not distinct.any():
                continue
            valid = distinct & size_valid
            if not valid.any():
                continue
            np.take(one_hot, order, axis=0, out=scratch)
            np.cumsum(scratch, axis=0, out=scratch)
            left_counts = scratch[:-1]
            right_counts = parent_counts[np.newaxis, :] - left_counts
            weighted = (
                left_sizes * gini_impurity(left_counts)
                + right_sizes * gini_impurity(right_counts)
            ) / n
            weighted = np.where(valid, weighted, np.inf)
            position = int(np.argmin(weighted))
            gain = parent_gini - weighted[position]
            if gain > best_gain:
                threshold = 0.5 * (
                    sorted_values[position] + sorted_values[position + 1]
                )
                # Guard against float rounding: the midpoint of two very
                # close values can collapse onto the upper one, which
                # would leave the right child empty.  Splitting at the
                # lower value keeps both sides non-empty.
                if threshold >= sorted_values[position + 1]:
                    threshold = sorted_values[position]
                best_gain = gain
                best = (int(feature), float(threshold), float(gain), position)
        if best is None:
            return None
        feature, threshold, gain, _ = best
        mask = X[indices, feature] <= threshold
        if not mask.any() or mask.all():
            return None
        return feature, threshold, gain, indices[mask], indices[~mask]

    # ------------------------------------------------------- predict

    def _check_fitted(self):
        if self.classes_ is None:
            raise RuntimeError("tree is not fitted; call fit() first")

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index each row lands in."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must have shape (n, {self.n_features_}), got {X.shape}"
            )
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        left = np.asarray(self._children_left)
        right = np.asarray(self._children_right)
        feature = np.asarray(self._split_feature)
        threshold = np.asarray(self._split_threshold)
        active = left[nodes] >= 0
        while active.any():
            rows = np.nonzero(active)[0]
            current = nodes[rows]
            goes_left = (
                X[rows, feature[current]] <= threshold[current]
            )
            nodes[rows] = np.where(
                goes_left, left[current], right[current]
            )
            active = left[nodes] >= 0
        return nodes

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates, columns ordered as classes_."""
        leaves = self.apply(X)
        proba = np.stack(self._node_proba)
        return proba[leaves]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def node_count(self) -> int:
        """Total nodes in the grown tree."""
        return len(self._children_left)

    @property
    def depth(self) -> int:
        """Actual depth of the grown tree."""
        self._check_fitted()
        depths = {0: 0}
        maximum = 0
        for node in range(self.node_count):
            left = self._children_left[node]
            right = self._children_right[node]
            for child in (left, right):
                if child >= 0:
                    depths[child] = depths[node] + 1
                    maximum = max(maximum, depths[child])
        return maximum
