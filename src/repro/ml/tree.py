"""CART decision tree with Gini impurity, implemented on numpy.

The paper's fingerprinting classifier is a random forest "with 100
trees and ... maximum depth ... 32", using "Gini impurity as the
splitting criterion" (§IV-B).  scikit-learn is not available offline,
so the tree (and the forest in :mod:`repro.ml.forest`) is implemented
from scratch: exact greedy CART with threshold splits and per-node
random feature subsampling.

The split search is the fit hot path and is fully vectorized
(sklearn-style presorting):

* every feature column is stable-argsorted **once per fit**; each node
  recovers the sorted order of its candidate columns by compacting its
  members out of the global presort (a mask/nonzero pass over the
  candidate columns only — no per-node re-sorting, no carrying
  per-node sorted matrices down the tree);
* all candidate features of a node are scored in **one**
  histogram/cumsum pass over a ``(features, samples, classes)`` tensor
  instead of a Python loop per feature;
* class counts ride the growth stack, split-size vectors are cached by
  node size, and the node-probability matrix is assembled in one
  vectorized division at the end of fit, so ``apply`` /
  ``predict_proba`` do no per-call list-to-array conversion.

The grown tree is bit-identical to the pre-vectorization
implementation (kept as
:class:`repro.perf.reference.LegacyDecisionTreeClassifier` and pinned
by ``tests/test_kernel_parity.py``): same RNG draw sequence, same
split ordering and tie-breaks, same floating-point operation order in
the impurity math.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_int_in_range


def gini_impurity(counts: np.ndarray) -> np.ndarray:
    """Gini impurity of class-count vectors (last axis = classes)."""
    counts = np.asarray(counts, dtype=np.float64)
    totals = counts.sum(axis=-1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        proportions = np.where(totals > 0, counts / totals, 0.0)
    return 1.0 - (proportions**2).sum(axis=-1)


def _resolve_max_features(max_features, n_features: int) -> int:
    if max_features is None or max_features == "all":
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(max_features, (int, np.integer)):
        return require_int_in_range(
            int(max_features), 1, n_features, "max_features"
        )
    if isinstance(max_features, float):
        if not (0.0 < max_features <= 1.0):
            raise ValueError("fractional max_features must be in (0, 1]")
        return max(1, int(max_features * n_features))
    raise ValueError(f"unsupported max_features: {max_features!r}")


class DecisionTreeClassifier:
    """A greedy CART classifier.

    Args:
        max_depth: maximum tree depth (root = depth 0).
        min_samples_split: smallest node that may be split further.
        min_samples_leaf: smallest allowed child node.
        max_features: features examined per split — ``"sqrt"`` (the
            random-forest default), ``"log2"``, ``"all"``/``None``, an
            integer count, or a fraction.
        seed: RNG for the per-node feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 32,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, float, None] = None,
        seed: RngLike = None,
    ):
        self.max_depth = require_int_in_range(max_depth, 1, 10_000, "max_depth")
        self.min_samples_split = require_int_in_range(
            min_samples_split, 2, 1 << 31, "min_samples_split"
        )
        self.min_samples_leaf = require_int_in_range(
            min_samples_leaf, 1, 1 << 31, "min_samples_leaf"
        )
        self.max_features = max_features
        self._rng = ensure_rng(seed)
        # Flat node arrays, filled during fit().
        self._children_left: List[int] = []
        self._children_right: List[int] = []
        self._split_feature: List[int] = []
        self._split_threshold: List[float] = []
        self._node_proba: List[np.ndarray] = []
        # Prediction-time caches, built once at the end of fit().
        self._left_arr: Optional[np.ndarray] = None
        self._right_arr: Optional[np.ndarray] = None
        self._feature_arr: Optional[np.ndarray] = None
        self._threshold_arr: Optional[np.ndarray] = None
        self._proba_matrix: Optional[np.ndarray] = None
        self._depth: int = 0
        self.classes_: Optional[np.ndarray] = None
        self.n_features_: Optional[int] = None
        self.feature_importances_: Optional[np.ndarray] = None

    # ----------------------------------------------------------- fit

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Grow the tree on data ``X`` (n, d) and labels ``y`` (n,)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one label per row of X")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        n_classes = self.classes_.size
        n_total = X.shape[0]
        self._children_left = []
        self._children_right = []
        self._split_feature = []
        self._split_threshold = []
        node_counts: List[np.ndarray] = []
        importances = np.zeros(self.n_features_)

        n_subset = _resolve_max_features(self.max_features, self.n_features_)

        # Presort every feature column once; stable sort breaks value
        # ties by row index.  Node index sets stay ascending down the
        # whole tree (children are mask-selections of the parent), so
        # filtering a global column to a node's members preserves
        # exactly the order a per-node stable argsort would produce.
        presorted = np.argsort(X, axis=0, kind="stable")
        # Per-fit scratch reused by every node: node-local class codes
        # addressed by global sample index, the membership flags that
        # filter the presort down to a node, the present-class code
        # remap, and one arange whose slices serve as every index
        # vector a node needs (allocating fresh aranges per node costs
        # more than the node's actual math at this data scale).
        member_scratch = np.zeros(n_total, dtype=bool)
        class_remap = np.empty(n_classes, dtype=np.int64)
        ar = np.arange(max(n_total, self.n_features_, n_classes) + 1)
        # Split-size validity and child-size vectors depend only on the
        # node's sample count, so nodes of equal size share one cached
        # entry: (any_valid, size_valid, left_sizes, right_sizes,
        # left_sizes_col_f64, right_sizes_col_f64).
        size_cache: dict = {}

        def new_node(counts: np.ndarray) -> int:
            index = len(self._children_left)
            self._children_left.append(-1)
            self._children_right.append(-1)
            self._split_feature.append(-1)
            self._split_threshold.append(np.nan)
            node_counts.append(counts)
            return index

        # Iterative depth-first growth (avoids recursion limits at
        # depth 32 x wide trees).  Each entry carries the node's class
        # counts so no node recounts its own labels.
        stack: List[Tuple[np.ndarray, int, int, np.ndarray]] = []
        root_counts = np.bincount(encoded, minlength=n_classes)
        root = new_node(root_counts)
        stack.append((np.arange(n_total), root, 0, root_counts))
        max_depth_seen = 0

        while stack:
            indices, node, depth, counts = stack.pop()
            if (
                depth >= self.max_depth
                or indices.size < self.min_samples_split
                or np.count_nonzero(counts) <= 1
            ):
                continue
            split = self._best_split(
                X,
                encoded,
                indices,
                presorted,
                counts,
                n_subset,
                member_scratch,
                class_remap,
                ar,
                size_cache,
            )
            if split is None:
                continue
            feature, threshold, gain, left_idx, right_idx, left_counts = split
            self._split_feature[node] = feature
            self._split_threshold[node] = threshold
            importances[feature] += gain * indices.size
            right_counts = counts - left_counts
            left = new_node(left_counts)
            right = new_node(right_counts)
            self._children_left[node] = left
            self._children_right[node] = right
            stack.append((left_idx, left, depth + 1, left_counts))
            stack.append((right_idx, right, depth + 1, right_counts))
            if depth + 1 > max_depth_seen:
                max_depth_seen = depth + 1

        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        self._depth = max_depth_seen
        self._left_arr = np.asarray(self._children_left, dtype=np.int64)
        self._right_arr = np.asarray(self._children_right, dtype=np.int64)
        self._feature_arr = np.asarray(self._split_feature, dtype=np.int64)
        self._threshold_arr = np.asarray(
            self._split_threshold, dtype=np.float64
        )
        # One vectorized division builds every node's class
        # probabilities (the count matrix is exact integers, so the
        # row totals equal the per-node float sums bit for bit).
        counts_matrix = np.asarray(node_counts, dtype=np.float64)
        row_totals = counts_matrix.sum(axis=1)
        self._proba_matrix = counts_matrix / row_totals[:, np.newaxis]
        self._node_proba = list(self._proba_matrix)
        return self

    def _best_split(
        self,
        X: np.ndarray,
        encoded: np.ndarray,
        indices: np.ndarray,
        presorted: np.ndarray,
        counts: np.ndarray,
        n_subset: int,
        member_scratch: np.ndarray,
        class_remap: np.ndarray,
        ar: np.ndarray,
        size_cache: dict,
    ):
        """Exact best Gini split over a random feature subset.

        Scores every candidate feature in one pass: the node's sorted
        sample order per candidate feature is recovered by masking the
        global presort down to the node's members (stable, so it
        matches a per-node stable argsort exactly), and one
        ``(features, samples, classes)`` one-hot/cumsum tensor yields
        the class prefix counts of all candidate split positions of
        all candidate features at once.

        The impurity math is inlined rather than routed through
        :func:`gini_impurity`: child class totals are the (exact,
        integer-valued) child sizes, so the guarded
        ``where(totals > 0, ...)`` division collapses to a plain
        division by the cached size vectors — same bits, no per-node
        ``errstate`` entry or totals reduction.

        Returns ``(feature, threshold, impurity_decrease, left, right,
        left_class_counts)`` or ``None`` if no valid split exists.
        """
        n = indices.size
        sizes = size_cache.get(n)
        if sizes is None:
            left_sizes = ar[1:n]
            right_sizes = n - left_sizes
            size_valid = (left_sizes >= self.min_samples_leaf) & (
                right_sizes >= self.min_samples_leaf
            )
            sizes = (
                bool(size_valid.any()),
                size_valid,
                left_sizes,
                right_sizes,
                left_sizes.astype(np.float64)[:, np.newaxis],
                right_sizes.astype(np.float64)[:, np.newaxis],
            )
            size_cache[n] = sizes
        any_valid, size_valid, left_sizes, right_sizes, lsf, rsf = sizes
        if not any_valid:
            return None

        # Work only with the classes present in this node: deep nodes
        # hold few classes, which shrinks the prefix-sum tensor.  The
        # node's counts arrive from the growth stack, so presence and
        # the dense code remap come from them, not a per-node unique().
        present = counts.nonzero()[0]
        n_present = present.size
        if n_present != counts.size:
            class_remap[present] = ar[:n_present]
            parent_counts = counts[present].astype(np.float64)
        else:
            parent_counts = counts.astype(np.float64)
        parent_p = parent_counts / n
        parent_gini = 1.0 - (parent_p**2).sum()

        features = self._rng.choice(
            self.n_features_, size=n_subset, replace=False
        )
        # Two bit-identical routes to the node's per-candidate sorted
        # order (stable sorts break value ties by node position either
        # way); pick by cost.  Small nodes sort their own few rows
        # directly — O(n·k·log n); large nodes filter the global
        # presort, whose mask/nonzero pass is O(N·k) regardless of
        # node size but beats re-sorting wide nodes.
        if 4 * n < member_scratch.size:
            node_values = X[indices[:, np.newaxis], features]
            order = node_values.argsort(axis=0, kind="stable")
            columns = indices[order]
            # Same gather as take_along_axis(..., axis=0) without its
            # per-call Python index assembly.
            sorted_values = node_values[order, ar[np.newaxis, :n_subset]]
        elif n == member_scratch.size:
            # Whole-population node (the root): the presort columns ARE
            # the node's sorted members, no filtering needed.
            columns = presorted[:, features]
            sorted_values = X[columns, features]
        else:
            # Mark members, walk each candidate column in global
            # sorted order, and keep the members (nonzero over the
            # transposed mask yields them feature-major,
            # position-ordered).
            member_scratch[indices] = True
            global_columns = presorted[:, features]
            member_rows = member_scratch[global_columns]
            feature_pos, sorted_pos = np.nonzero(member_rows.T)
            columns = global_columns[sorted_pos, feature_pos].reshape(
                n_subset, n
            ).T
            member_scratch[indices] = False
            sorted_values = X[columns, features]
        # Candidate split positions: between distinct values only (and
        # between legal child sizes; with the default leaf minimum of 1
        # every interior position is legal, so skip the mask there).
        distinct = sorted_values[1:] != sorted_values[:-1]
        if self.min_samples_leaf == 1:
            valid = distinct
        else:
            valid = distinct & size_valid[:, np.newaxis]

        # Class prefix counts for every candidate feature in one
        # cumsum over a one-hot tensor of the sorted class codes (the
        # dense remap is the identity when every class is present).
        sorted_labels = encoded[columns]
        if n_present != counts.size:
            sorted_labels = class_remap[sorted_labels]
        one_hot = np.zeros((n_subset, n, n_present))
        one_hot[
            ar[:n_subset, np.newaxis],
            ar[np.newaxis, :n],
            sorted_labels.T,
        ] = 1.0
        one_hot.cumsum(axis=1, out=one_hot)
        # Child impurities, allocation-lean: the right prefix counts
        # divide in place (they are a fresh array), both proportion
        # tensors square in place, and the weighted-impurity chain
        # reuses its operands.  Every in-place step performs the same
        # IEEE operation on the same values as the out-of-place
        # original, so the scores are bit-identical.
        left_counts = one_hot[:, :-1, :]
        left_p = left_counts / lsf
        right_p = parent_counts - left_counts
        right_p /= rsf
        left_p *= left_p
        right_p *= right_p
        weighted = np.add.reduce(left_p, axis=-1)
        right_sum = np.add.reduce(right_p, axis=-1)
        np.subtract(1.0, weighted, out=weighted)
        weighted *= left_sizes
        np.subtract(1.0, right_sum, out=right_sum)
        right_sum *= right_sizes
        weighted += right_sum
        weighted /= n
        weighted[~valid.T] = np.inf
        positions = weighted.argmin(axis=1)
        gains = parent_gini - weighted[ar[:n_subset], positions]

        # Feature order still breaks ties: scanning candidates in draw
        # order and keeping each strict improvement always ends on the
        # FIRST candidate attaining the maximal gain, which is exactly
        # what argmax returns.  A candidate with no valid position has
        # an all-inf weighted row, hence gain -inf — no separate
        # validity mask needed.
        candidate = int(gains.argmax())
        gain = float(gains[candidate])
        if not gain > 1e-12:
            return None
        position = int(positions[candidate])
        value_low = sorted_values[position, candidate]
        value_high = sorted_values[position + 1, candidate]
        threshold = 0.5 * (value_low + value_high)
        # Guard against float rounding: the midpoint of two very close
        # values can collapse onto the upper one, which would leave the
        # right child empty.  Splitting at the lower value keeps both
        # sides non-empty.
        if threshold >= value_high:
            threshold = value_low
        feature = int(features[candidate])
        threshold = float(threshold)
        mask = X[indices, feature] <= threshold
        n_left = np.count_nonzero(mask)
        if n_left == 0 or n_left == n:
            return None
        # The winning prefix row of the cumsum tensor is the left
        # child's class histogram (exact integer-valued floats), so the
        # caller skips re-bincounting the child's labels.
        left_child_counts = np.zeros(counts.size, dtype=np.int64)
        left_child_counts[present] = one_hot[candidate, position].astype(
            np.int64
        )
        return (
            feature,
            threshold,
            gain,
            indices[mask],
            indices[~mask],
            left_child_counts,
        )

    # ------------------------------------------------------- predict

    def _check_fitted(self):
        if self.classes_ is None:
            raise RuntimeError("tree is not fitted; call fit() first")

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index each row lands in."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must have shape (n, {self.n_features_}), got {X.shape}"
            )
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        left = self._left_arr
        right = self._right_arr
        feature = self._feature_arr
        threshold = self._threshold_arr
        active = left[nodes] >= 0
        while active.any():
            rows = np.nonzero(active)[0]
            current = nodes[rows]
            goes_left = (
                X[rows, feature[current]] <= threshold[current]
            )
            nodes[rows] = np.where(
                goes_left, left[current], right[current]
            )
            active = left[nodes] >= 0
        return nodes

    @property
    def node_proba_matrix(self) -> np.ndarray:
        """Stacked ``(node_count, n_classes)`` leaf probabilities.

        Built once at fit time; the forest indexes it directly when
        assembling its batched prediction tensor.
        """
        self._check_fitted()
        return self._proba_matrix

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates, columns ordered as classes_."""
        leaves = self.apply(X)
        return self._proba_matrix[leaves]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def node_count(self) -> int:
        """Total nodes in the grown tree."""
        return len(self._children_left)

    @property
    def depth(self) -> int:
        """Actual depth of the grown tree (tracked during growth)."""
        self._check_fitted()
        return self._depth
