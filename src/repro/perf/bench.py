"""The fingerprinting-pipeline bench behind ``BENCH_fingerprint.json``.

Runs the Table-III-style pipeline — collect traces, train per-channel
forests, sweep the channel x duration CV grid — once serially and once
with the parallel engine, and reports:

* wall time per stage for both runs (:class:`repro.perf.StageTimer`);
* the parallel speedup per stage and overall;
* accuracy parity: the parallel grid must reproduce the serial grid's
  top-1/top-5 numbers exactly (the engine is deterministic by
  construction, so any drift here is a bug).

The JSON schema (consumed by future perf-tracking PRs)::

    {
      "benchmark": "fingerprint",
      "schema_version": 1,
      "workers": 4,                  # parallel-run worker count
      "cpu_count": 8,                # CPUs visible to this process
      "scale": {...},                # FingerprintConfig + model/duration counts
      "stages": {
        "collect":  {"serial": s, "parallel": s, "speedup": x},
        "train":    {"serial": s, "parallel": s, "speedup": x},
        "evaluate": {"serial": s, "parallel": s, "speedup": x}
      },
      "total": {"serial": s, "parallel": s, "speedup": x},
      "parity": {"identical": true, "max_abs_diff": 0.0},
      "accuracy": {"fpga/current/5.0": {"top1": ..., "top5": ...}, ...},
      "kernels": {                   # repro.perf.kernels micro-bench
        "tree_fit": {"legacy_seconds": s, "vectorized_seconds": s,
                     "speedup": x, "identical": true,
                     "max_abs_diff": 0.0},
        ...
      },
      "check_flow": {                # repro check cold vs warm cache
        "cold_seconds": s, "warm_seconds": s, "speedup": x,
        "files_scanned": n, "modules_analyzed_cold": n,
        "modules_analyzed_warm": 0, "cache_hits_warm": n,
        "findings": 0, "ok": true
      }
    }

Speedups are honest wall-clock ratios on the current machine; on a
single-CPU container they hover near 1.0 no matter how many workers
are requested (``cpu_count`` is recorded so downstream tracking can
normalize).
"""

from __future__ import annotations

import json
import statistics
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.perf.config import available_cpus, resolve_workers
from repro.perf.timer import StageTimer

#: Bumped whenever the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default bench scale: a reduced-but-faithful Table III protocol.
DEFAULT_MODELS = 12
DEFAULT_DURATIONS = (1.0, 5.0)


def _stage_seconds(report: Dict) -> Dict[str, float]:
    """Flatten one bench report's wall-clock stage timings.

    Understands the two timing shapes the benches emit — the
    ``stages``/``total`` serial-vs-parallel cells of the pipeline
    bench, and the flat ``stage_seconds`` dict of the stream/fleet
    benches — and keys each timing ``stage.mode`` / ``stage``.
    """
    out: Dict[str, float] = {}
    stages = report.get("stages")
    if isinstance(stages, dict):
        for name, cell in stages.items():
            if isinstance(cell, dict):
                for mode in ("serial", "parallel"):
                    if mode in cell:
                        out[f"{name}.{mode}"] = float(cell[mode])
    total = report.get("total")
    if isinstance(total, dict):
        for mode in ("serial", "parallel"):
            if mode in total:
                out[f"total.{mode}"] = float(total[mode])
    flat = report.get("stage_seconds")
    if isinstance(flat, dict):
        for name, value in flat.items():
            if isinstance(value, (int, float)):
                out[str(name)] = float(value)
    return out


def run_repeated(run: Callable[[], Dict], repeat: int = 1) -> Dict:
    """Run a bench ``repeat`` times; report min/median per stage.

    Single-shot timings made earlier bench numbers look like noise
    (a 0.93x "regression" can be one scheduler hiccup); repeating the
    whole bench and taking the **min** per stage is the standard
    noise floor, with the **median** alongside as the honest typical
    cost.  The returned report is the first run's (results are
    deterministic, so any run's accuracies/parity are THE numbers)
    with three additions:

    * ``repeat`` — how many runs were folded in;
    * ``stage_stats`` — ``{stage: {min_s, median_s}}`` over all runs;
    * the headline ``stages``/``total`` serial/parallel seconds (when
      present) are replaced by their min over runs, and speedups
      recomputed from those mins.
    """
    repeat = max(1, int(repeat))
    reports = [run() for _ in range(repeat)]
    report = reports[0]
    samples: Dict[str, list] = {}
    for current in reports:
        for stage, seconds in _stage_seconds(current).items():
            samples.setdefault(stage, []).append(seconds)
    report["repeat"] = repeat
    report["stage_stats"] = {
        stage: {
            "min_s": min(values),
            "median_s": statistics.median(values),
        }
        for stage, values in samples.items()
    }

    def _fold(cell: Dict, prefix: str) -> None:
        for mode in ("serial", "parallel"):
            key = f"{prefix}.{mode}"
            if mode in cell and key in samples:
                cell[mode] = min(samples[key])
        if "serial" in cell and "parallel" in cell and "speedup" in cell:
            cell["speedup"] = (
                cell["serial"] / cell["parallel"]
                if cell["parallel"] > 0
                else 0.0
            )

    if isinstance(report.get("stages"), dict):
        for name, cell in report["stages"].items():
            if isinstance(cell, dict):
                _fold(cell, name)
    if isinstance(report.get("total"), dict):
        _fold(report["total"], "total")
    if isinstance(report.get("stage_seconds"), dict):
        for name in report["stage_seconds"]:
            if name in samples:
                report["stage_seconds"][name] = min(samples[name])
    return report


def _pool_probe_task(x: int) -> int:
    """A tiny deterministic task for the pool-vs-fork head-to-head."""
    total = 0
    for step in range(200):
        total += (x * step) % 7
    return total


def run_pool_head_to_head(
    calls: int = 8,
    items: int = 16,
    workers: int = 2,
    chunksize: int = 2,
) -> Dict:
    """Pool-reuse vs fork-per-call on identical repeated fan-outs.

    Times ``calls`` small ``map`` fan-outs twice: once on the warm
    persistent :class:`~repro.perf.pool.WorkerPool` and once forking a
    fresh ``ProcessPoolExecutor`` per call (the pre-PR 8 engine).  The
    per-call cost difference is pure pool start-up plus cold-import
    overhead — the tax every small parallel stage used to pay.
    """
    import time
    from concurrent.futures import ProcessPoolExecutor

    from repro.perf.executor import _fork_context, _mark_worker
    from repro.perf.pool import get_pool

    context = _fork_context()
    item_list = list(range(int(items)))
    expected = [_pool_probe_task(x) for x in item_list]
    if context is None:  # pragma: no cover - no fork on this platform
        return {
            "available": False,
            "calls": calls,
            "items": items,
            "workers": workers,
        }
    pool = get_pool(workers)
    pool.map(_pool_probe_task, item_list, chunksize=chunksize)  # warm-up
    identical = True
    begin = time.perf_counter()
    for _ in range(int(calls)):
        got = pool.map(_pool_probe_task, item_list, chunksize=chunksize)
        identical = identical and got == expected
    pool_s = time.perf_counter() - begin
    begin = time.perf_counter()
    for _ in range(int(calls)):
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_mark_worker,
        ) as executor:
            got = list(
                executor.map(
                    _pool_probe_task, item_list, chunksize=chunksize
                )
            )
        identical = identical and got == expected
    fork_s = time.perf_counter() - begin
    return {
        "available": True,
        "calls": int(calls),
        "items": int(items),
        "workers": int(workers),
        "pool_seconds": pool_s,
        "fork_per_call_seconds": fork_s,
        "speedup": fork_s / pool_s if pool_s > 0 else 0.0,
        "identical": identical,
    }


def _channel_key(channel: Tuple[str, str, float]) -> str:
    domain, quantity, duration = channel
    return f"{domain}/{quantity}/{duration:g}"


def _run_pipeline(fingerprinter, models, durations, workers, timer):
    """collect -> train -> evaluate once at a given worker count."""
    with timer.stage("collect"):
        datasets = fingerprinter.collect_datasets(models=models)
    with timer.stage("train"):
        classifiers = fingerprinter.train_all(datasets, workers=workers)
    with timer.stage("evaluate"):
        results = fingerprinter.evaluate_table3(
            datasets, durations=durations, workers=workers
        )
    return datasets, classifiers, results


def run_check_flow_bench(root=None) -> Dict:
    """Cold vs warm timing of the whole-program checker.

    Runs ``repro check`` twice against a throwaway cache directory:
    the cold pass parses and extracts facts for every module, the warm
    pass must come entirely from the content-hash cache (only the
    whole-program fixpoint re-runs).  The contract tracked here is
    warm >= 3x faster than cold; ``modules_analyzed`` on the warm pass
    must be 0 on an unchanged tree.
    """
    import shutil
    import tempfile
    import time

    from repro.check import run_check
    from repro.check.engine import default_root

    if root is None:
        root = default_root()
    cache_dir = tempfile.mkdtemp(prefix="repro_check_bench_")
    try:
        begin = time.perf_counter()
        cold = run_check(root=root, cache_dir=cache_dir)
        cold_s = time.perf_counter() - begin
        begin = time.perf_counter()
        warm = run_check(root=root, cache_dir=cache_dir)
        warm_s = time.perf_counter() - begin
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else 0.0,
        "files_scanned": cold.files_scanned,
        "modules_analyzed_cold": cold.modules_analyzed,
        "modules_analyzed_warm": warm.modules_analyzed,
        "cache_hits_warm": warm.cache_hits,
        "findings": len(cold.findings),
        "ok": bool(cold.ok),
    }


def run_fingerprint_bench(
    workers: Optional[int] = None,
    n_models: int = DEFAULT_MODELS,
    durations: Sequence[float] = DEFAULT_DURATIONS,
    traces_per_model: int = 10,
    n_folds: int = 5,
    forest_trees: int = 30,
    seed: int = 0,
    models: Optional[Iterable[str]] = None,
    kernel_repeats: int = 3,
) -> Dict:
    """Run the pipeline serially and in parallel; return the bench dict.

    Args:
        workers: parallel-run worker count (``None`` honors
            ``AMPEREBLEED_WORKERS``, falling back to all CPUs).
        n_models: victim architectures to fingerprint (ignored when
            ``models`` names them explicitly).
        durations: Table III duration columns to sweep.
        traces_per_model / n_folds / forest_trees: protocol scale.
        seed: experiment seed (both runs share it).
        models: explicit victim list, overriding ``n_models``.
        kernel_repeats: best-of runs for the per-kernel micro-bench.
    """
    from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
    from repro.dpu.models import list_models
    from repro.perf.kernels import run_kernel_bench

    workers = resolve_workers(workers, default=available_cpus())
    if models is None:
        models = list_models()[: max(2, int(n_models))]
    else:
        models = list(models)
    config = FingerprintConfig(
        duration=max(durations),
        traces_per_model=traces_per_model,
        n_folds=n_folds,
        forest_trees=forest_trees,
    )

    serial_timer = StageTimer()
    serial_fp = DnnFingerprinter(config=config, seed=seed)
    _, _, serial_results = _run_pipeline(
        serial_fp, models, durations, 1, serial_timer
    )

    overhead = _measure_faults_disabled_overhead(config, models, seed)

    parallel_timer = StageTimer()
    parallel_fp = DnnFingerprinter(config=config, seed=seed)
    _, _, parallel_results = _run_pipeline(
        parallel_fp, models, durations, workers, parallel_timer
    )

    max_diff = 0.0
    accuracy: Dict[str, Dict[str, float]] = {}
    for cell, serial_cv in serial_results.items():
        parallel_cv = parallel_results[cell]
        max_diff = max(
            max_diff,
            abs(serial_cv.top1 - parallel_cv.top1),
            abs(serial_cv.top5 - parallel_cv.top5),
        )
        accuracy[_channel_key(cell)] = {
            "top1": parallel_cv.top1,
            "top5": parallel_cv.top5,
        }

    def _speedup(serial: float, parallel: float) -> float:
        return serial / parallel if parallel > 0 else 0.0

    stages = {}
    for name in ("collect", "train", "evaluate"):
        serial_s = serial_timer.elapsed(name)
        parallel_s = parallel_timer.elapsed(name)
        stages[name] = {
            "serial": serial_s,
            "parallel": parallel_s,
            "speedup": _speedup(serial_s, parallel_s),
        }

    return {
        "benchmark": "fingerprint",
        "schema_version": SCHEMA_VERSION,
        "workers": workers,
        "cpu_count": available_cpus(),
        "scale": {
            "models": len(models),
            "traces_per_model": traces_per_model,
            "n_folds": n_folds,
            "forest_trees": forest_trees,
            "durations": list(durations),
            "channels": 6,
        },
        "seed": seed,
        "stages": stages,
        "total": {
            "serial": serial_timer.total,
            "parallel": parallel_timer.total,
            "speedup": _speedup(serial_timer.total, parallel_timer.total),
        },
        "parity": {
            # The determinism contract demands *exact* equality here.
            "identical": max_diff == 0.0,  # repro: ignore[API002]
            "max_abs_diff": max_diff,
        },
        "faults_disabled_overhead": overhead,
        "accuracy": accuracy,
        "kernels": run_kernel_bench(seed=seed, repeats=kernel_repeats),
        "check_flow": run_check_flow_bench(),
    }


def _measure_faults_disabled_overhead(config, models, seed) -> Dict:
    """Acquisition cost of an armed-but-noop fault plan.

    Times a small collect pass with no plan armed and again with
    ``FaultPlan.none()`` armed; the noop plan must keep the fast path
    (``faults_active`` is false), so the overhead should be noise-level
    — the JSON records it to hold the <5 % regression line.
    """
    import time

    from repro.core.fingerprint import DnnFingerprinter
    from repro.faults import FaultPlan
    from repro.session import AttackSession

    probe_models = models[:2]

    def collect_once(armed: bool) -> float:
        session = AttackSession.create(seed=seed)
        if armed:
            session.arm_faults(FaultPlan.none())
        fingerprinter = DnnFingerprinter(session=session, config=config)
        begin = time.perf_counter()
        fingerprinter.collect_datasets(
            models=probe_models, traces_per_model=2
        )
        return time.perf_counter() - begin

    # Best-of-3 each, interleaved, to shave scheduler noise.
    disabled = min(collect_once(False) for _ in range(3))
    armed = min(collect_once(True) for _ in range(3))
    return {
        "disabled_seconds": disabled,
        "armed_noop_seconds": armed,
        "overhead_fraction": (armed - disabled) / disabled
        if disabled > 0
        else 0.0,
    }


#: Default fault-rate grid for the accuracy-vs-fault-rate sweep.
DEFAULT_FAULT_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)


def run_fault_sweep(
    rates: Sequence[float] = DEFAULT_FAULT_RATES,
    workers: Optional[int] = None,
    n_models: int = 6,
    traces_per_model: int = 6,
    n_folds: int = 4,
    forest_trees: int = 20,
    duration: float = 2.0,
    seed: int = 0,
) -> Dict:
    """Fingerprinting accuracy as the injected fault rate rises.

    For each rate, a fresh session arms :meth:`repro.faults.FaultPlan.
    at_rate` on every sensor, records the four current channels in
    degraded mode (dead channels dropped), and evaluates the fused
    classifier over whatever survived.  The per-rate entries report
    the fused top-1/top-5 plus the recovery counters (retries, gaps,
    interpolated samples) and any channels lost, so the sweep shows
    both the accuracy cost of faults and how hard the resilient plane
    worked to contain it.
    """
    from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
    from repro.dpu.models import list_models
    from repro.session import AttackSession

    workers = resolve_workers(workers, default=available_cpus())
    models = list_models()[: max(2, int(n_models))]
    config = FingerprintConfig(
        duration=duration,
        traces_per_model=traces_per_model,
        n_folds=n_folds,
        forest_trees=forest_trees,
    )
    channels = (
        ("fpd", "current"),
        ("lpd", "current"),
        ("ddr", "current"),
        ("fpga", "current"),
    )
    timer = StageTimer()
    points = []
    for rate in rates:
        with timer.stage(f"rate-{float(rate):g}"):
            session = AttackSession.create(seed=seed, faults=float(rate))
            fingerprinter = DnnFingerprinter(
                session=session, config=config, workers=workers
            )
            datasets = fingerprinter.collect_datasets(
                models=models, channels=channels, on_dead="drop"
            )
            retries = gaps = interpolated = 0
            for dataset in datasets.values():
                for trace in dataset:
                    if trace.quality is not None:
                        retries += trace.quality.retries
                        gaps += trace.quality.gaps
                        interpolated += trace.quality.interpolated
            fused = fingerprinter.evaluate_fused_degraded(datasets)
            result = fused["result"]
        points.append(
            {
                "rate": float(rate),
                "top1": result.top1,
                "top5": result.top5,
                "used_channels": [
                    "/".join(channel) for channel in fused["used_channels"]
                ],
                "dropped_channels": [
                    "/".join(channel)
                    for channel in fused["dropped_channels"]
                ],
                "retries": retries,
                "gaps": gaps,
                "interpolated": interpolated,
            }
        )
    return {
        "benchmark": "fingerprint-faults",
        "schema_version": SCHEMA_VERSION,
        "workers": workers,
        "cpu_count": available_cpus(),
        "seed": seed,
        "scale": {
            "models": len(models),
            "traces_per_model": traces_per_model,
            "n_folds": n_folds,
            "forest_trees": forest_trees,
            "duration": duration,
            "channels": len(channels),
        },
        "rates": points,
        "stage_seconds": timer.as_dict(),
    }


def run_stream_bench(
    n_models: int = 6,
    traces_per_model: int = 6,
    n_folds: int = 4,
    forest_trees: int = 20,
    duration: float = 2.0,
    monitor_duration: float = 30.0,
    window_seconds: float = 2.0,
    hop_seconds: float = 0.5,
    chunk_seconds: float = 0.5,
    seed: int = 0,
) -> Dict:
    """Latency/memory profile of the live streaming-analysis pipeline.

    Trains a forest in-process, deploys a victim schedule cycling
    through the trained models, then drives a
    :class:`~repro.core.streaming.StreamingAnalyzer` chunk by chunk
    over a live :class:`~repro.core.sampler.TraceStream`, measuring

    * **per-chunk latency** — wall-clock cost of one ``push_chunk``
      (features + classify + smooth + detector), reported as
      p50/p95/max and as a fraction of the chunk's simulated duration
      (the number that must stay below 1 for the monitor to keep up
      with the sampler);
    * **verdict lag** — simulated seconds between a window's last
      sample and the chunk that emitted its verdict (deterministic,
      bounded by the chunk size);
    * **peak resident samples** — the extractor's buffer high-water
      mark against its O(window + chunk) bound;
    * **parity** — the streamed feature rows against the batch
      windowing of the reassembled stream, which must be bit-identical.
    """
    import time

    import numpy as np

    from repro.core.detector import OnsetDetector
    from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
    from repro.core.streaming import (
        StreamingAnalyzer,
        WindowSpec,
        batch_window_features,
    )
    from repro.dpu.models import build_model, list_models
    from repro.dpu.runner import DpuRunner
    from repro.session import AttackSession

    config = FingerprintConfig(
        duration=duration,
        traces_per_model=traces_per_model,
        n_folds=n_folds,
        forest_trees=forest_trees,
    )
    models = list_models()[: max(2, int(n_models))]
    channel = ("fpga", "current")
    timer = StageTimer()
    with timer.stage("train"):
        fingerprinter = DnnFingerprinter(config=config, seed=seed)
        datasets = fingerprinter.collect_datasets(
            models=models, channels=(channel,)
        )
        forest = fingerprinter.train(datasets[channel])

    session = AttackSession.create(seed=seed + 1)
    runner = DpuRunner()
    slot = monitor_duration / len(models)
    for index, name in enumerate(models):
        runner.deploy(
            session.soc,
            build_model(name),
            duration=slot,
            seed=session.derive(f"victim-{index}"),
            start=index * slot,
            name=f"victim-{index}",
        )
    poll_hz = session.sampler.default_poll_hz(channel[0])
    window_samples = max(1, int(round(window_seconds * poll_hz)))
    hop_samples = max(1, int(round(hop_seconds * poll_hz)))
    spec = WindowSpec(window_samples, min(hop_samples, window_samples))
    analyzer = StreamingAnalyzer(
        forest,
        spec,
        config.n_features,
        top_k=3,
        detector=OnsetDetector(),
    )
    stream = session.sampler.stream(
        channel[0],
        channel[1],
        duration=monitor_duration,
        poll_hz=poll_hz,
        chunk_duration=chunk_seconds,
    )
    latencies = []
    lags = []
    chunks = []
    feature_rows = []
    verdicts = switches = 0
    with timer.stage("monitor"):
        for chunk in stream:
            chunks.append(chunk)
            begin = time.perf_counter()
            update = analyzer.push_chunk(chunk)
            latencies.append(time.perf_counter() - begin)
            verdicts += len(update.verdicts)
            for verdict in update.verdicts:
                lags.append(verdict.lag_seconds)
                feature_rows.append(verdict.window.index)
            switches += sum(
                1
                for event in update.events
                if type(event).__name__ == "ModelSwitch"
            )
        analyzer.finish()

    all_values = np.concatenate([chunk.values for chunk in chunks])
    batch_features = batch_window_features(
        all_values, spec, config.n_features
    )
    stream_features = np.vstack(
        [
            analyzer2_batch.features
            for analyzer2_batch in _replay_feature_batches(
                spec, config.n_features, chunks
            )
        ]
    )
    if batch_features.shape == stream_features.shape:
        max_diff = float(
            np.max(np.abs(batch_features - stream_features))
        ) if batch_features.size else 0.0
    else:
        max_diff = float("inf")
    latencies_ms = np.asarray(latencies) * 1e3
    chunk_samples = stream.chunk_samples
    bound = window_samples + chunk_samples
    peak = analyzer.peak_resident_samples
    return {
        "benchmark": "fingerprint-stream",
        "schema_version": SCHEMA_VERSION,
        "cpu_count": available_cpus(),
        "seed": seed,
        "scale": {
            "models": len(models),
            "traces_per_model": traces_per_model,
            "forest_trees": forest_trees,
            "train_duration": duration,
            "monitor_duration": monitor_duration,
            "window_seconds": window_seconds,
            "hop_seconds": hop_seconds,
            "chunk_seconds": chunk_seconds,
            "poll_hz": poll_hz,
        },
        "counts": {
            "chunks": len(chunks),
            "verdicts": verdicts,
            "model_switches": switches,
        },
        "per_chunk_latency": {
            "p50_ms": float(np.percentile(latencies_ms, 50)),
            "p95_ms": float(np.percentile(latencies_ms, 95)),
            "max_ms": float(latencies_ms.max()),
            "mean_ms": float(latencies_ms.mean()),
            "p95_fraction_of_chunk": float(
                np.percentile(latencies_ms, 95) / (chunk_seconds * 1e3)
            ),
        },
        "verdict_lag": {
            "mean_seconds": float(np.mean(lags)) if lags else 0.0,
            "max_seconds": float(np.max(lags)) if lags else 0.0,
        },
        "memory": {
            "peak_resident_samples": int(peak),
            "bound_samples": int(bound),
            "bounded": bool(peak <= bound),
        },
        "parity": {
            "identical": max_diff == 0.0,  # repro: ignore[API002]
            "max_abs_diff": max_diff,
        },
        "stage_seconds": timer.as_dict(),
    }


def _replay_feature_batches(spec, n_features, chunks):
    """Re-extract the stream's feature batches for the parity check."""
    from repro.core.streaming import IncrementalFeatureExtractor

    extractor = IncrementalFeatureExtractor(spec, n_features)
    for chunk in chunks:
        batch = extractor.push_chunk(chunk)
        if len(batch):
            yield batch


def write_bench_json(report: Dict, path: str = "BENCH_fingerprint.json") -> str:
    """Write one bench report to disk; returns the path."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
