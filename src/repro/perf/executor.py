"""Deterministic parallel fan-out over a forked process pool.

:func:`parallel_map` is the single execution primitive every parallel
stage uses.  Its contract:

* results come back **in submission order**, so any pipeline built on
  it is reproducible regardless of worker count or scheduling;
* ``workers=1`` (or a single item) runs a plain serial loop in the
  calling process — no pool, no pickling, byte-for-byte the legacy
  behavior;
* inside a worker process the helper *always* runs serially, so a
  parallel stage that itself calls :func:`parallel_map` (a forest fit
  inside a CV fold, say) cannot fork a pool-of-pools and
  oversubscribe the machine;
* platforms without the ``fork`` start method (or with multiprocessing
  disabled) silently fall back to the serial loop — parallelism is an
  optimization, never a functional requirement.

Tasks and results must be picklable; the task callable must be a
module-level function (the usual :mod:`concurrent.futures` rules).

Fan-out rides the persistent :class:`repro.perf.pool.WorkerPool` by
default — workers forked once and reused across calls, so repeated
small stages stop paying pool start-up.  ``AMPEREBLEED_POOL=0``
restores the legacy fork-per-call ``ProcessPoolExecutor``; both
engines honor the exact contract above, so results are identical.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.perf.config import pool_enabled, resolve_workers

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Set to True inside pool workers (via the pool initializer) so nested
#: parallel stages degrade to serial loops instead of forking again.
_IN_WORKER = False


def in_worker() -> bool:
    """True when executing inside a parallel_map worker process."""
    return _IN_WORKER


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[_R]:
    """Apply ``fn`` to every item, fanning out over ``workers`` processes.

    Args:
        fn: a picklable module-level callable.
        items: the task sequence; fully materialized before dispatch.
        workers: worker count request (see
            :func:`repro.perf.config.resolve_workers`); the default
            honors ``AMPEREBLEED_WORKERS`` and falls back to serial.
        chunksize: tasks per pool dispatch (raise for many tiny tasks).

    Returns:
        ``[fn(item) for item in items]`` — same values, same order.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1 or _IN_WORKER:
        return [fn(item) for item in items]
    context = _fork_context()
    if context is None:
        return [fn(item) for item in items]
    workers = min(workers, len(items))
    if pool_enabled():
        from repro.perf.pool import get_pool

        return get_pool(workers).map(fn, items, chunksize=chunksize)
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_mark_worker,
    ) as pool:
        return list(pool.map(fn, items, chunksize=max(1, chunksize)))
