"""Per-kernel before/after micro-benchmarks for the PR-6 rework.

Times every kernel the vectorization touched against its frozen legacy
twin from :mod:`repro.perf.reference`, at the same scale the pipeline
bench exercises (the Table-III hot cell: 12 models x 10 traces, 140
features, 30-tree forests).  Each entry reports the legacy and
vectorized wall times (best of ``repeats`` runs, to shave scheduler
noise on small containers) plus the bit-parity verdict, because a
speedup that changes bits is a bug, not an optimization:

* ``tree_fit`` — presorted CART vs. per-node argsort-per-feature;
* ``forest_fit`` — 30 presorted trees vs. 30 legacy trees grown from
  the identical bootstrap seeds (the ``evaluate`` stage's hot path);
* ``forest_predict`` — batched frontier walk vs. tree-by-tree loop;
* ``resample`` — grouped batch interpolation vs. per-trace
  ``np.interp``;
* ``summary`` — one 2-D summary pass vs. a row-by-row loop;
* ``kfold`` — vectorized stratified folds vs. per-sample appends;
* ``archive_load`` — memory-mapped chunk reads vs. materializing
  ``np.load``.

:func:`run_kernel_bench` returns the dict that lands in
``BENCH_fingerprint.json`` under the ``"kernels"`` key; it is also
usable standalone for quick before/after checks while hacking on the
kernels.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.perf.reference import (
    LegacyDecisionTreeClassifier,
    legacy_forest_predict_proba,
    legacy_resample_loop,
    legacy_stratified_kfold_indices,
    legacy_summary_features_loop,
)
from repro.utils.rng import ensure_rng

#: Scale of the synthetic workload: the bench's hottest CV cell.
KERNEL_ROWS = 120
KERNEL_FEATURES = 140
KERNEL_CLASSES = 12
KERNEL_TREES = 30
KERNEL_RESAMPLE_POINTS = 160


def _best_of(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        begin = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begin)
    return best, result


def _entry(
    legacy_seconds: float,
    vectorized_seconds: float,
    max_diff: float,
) -> Dict:
    return {
        "legacy_seconds": legacy_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": legacy_seconds / vectorized_seconds
        if vectorized_seconds > 0
        else 0.0,
        "identical": max_diff == 0.0,  # repro: ignore[API002]
        "max_abs_diff": max_diff,
    }


def _classification_problem(seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """A bench-scale (X, y): 120 rows x 140 features, 12 string labels."""
    rng = ensure_rng(seed)
    X = rng.normal(size=(KERNEL_ROWS, KERNEL_FEATURES))
    labels = np.array([f"model-{i:02d}" for i in range(KERNEL_CLASSES)])
    y = labels[np.arange(KERNEL_ROWS) % KERNEL_CLASSES]
    return X, y


def _bench_tree_fit(seed: int, repeats: int) -> Dict:
    from repro.ml.tree import DecisionTreeClassifier

    X, y = _classification_problem(seed)

    def fit_legacy():
        tree = LegacyDecisionTreeClassifier(max_features="sqrt", seed=seed)
        return tree.fit(X, y)

    def fit_new():
        tree = DecisionTreeClassifier(max_features="sqrt", seed=seed)
        return tree.fit(X, y)

    legacy_seconds, legacy_tree = _best_of(fit_legacy, repeats)
    new_seconds, new_tree = _best_of(fit_new, repeats)
    max_diff = float(
        np.max(
            np.abs(legacy_tree.predict_proba(X) - new_tree.predict_proba(X))
        )
    )
    if legacy_tree.node_count != new_tree.node_count:
        max_diff = max(max_diff, float("inf"))
    if legacy_tree.depth != new_tree.depth:
        max_diff = max(max_diff, float("inf"))
    return _entry(legacy_seconds, new_seconds, max_diff)


def _legacy_forest_fit(X, y, n_trees: int, seed: int):
    """30 legacy trees grown exactly as the forest grows its own."""
    forest_rng = ensure_rng(seed)
    tree_seeds = forest_rng.integers(
        0, np.iinfo(np.int64).max, size=n_trees
    )
    trees = []
    n = X.shape[0]
    for tree_seed in tree_seeds:
        rng = ensure_rng(int(tree_seed))
        sample = rng.integers(0, n, size=n)
        tree = LegacyDecisionTreeClassifier(max_features="sqrt", seed=rng)
        tree.fit(X[sample], y[sample])
        trees.append(tree)
    return trees


def _bench_forest_fit(seed: int, repeats: int) -> Dict:
    from repro.ml.forest import RandomForestClassifier

    X, y = _classification_problem(seed)

    def fit_legacy():
        return _legacy_forest_fit(X, y, KERNEL_TREES, seed)

    def fit_new():
        forest = RandomForestClassifier(
            n_estimators=KERNEL_TREES, seed=seed, n_jobs=1
        )
        return forest.fit(X, y)

    legacy_seconds, legacy_trees = _best_of(fit_legacy, repeats)
    new_seconds, forest = _best_of(fit_new, repeats)
    max_diff = 0.0
    for legacy_tree, tree in zip(legacy_trees, forest.trees_):
        max_diff = max(
            max_diff,
            float(
                np.max(
                    np.abs(
                        legacy_tree.predict_proba(X) - tree.predict_proba(X)
                    )
                )
            ),
        )
        if legacy_tree.node_count != tree.node_count:
            max_diff = max(max_diff, float("inf"))
    return _entry(legacy_seconds, new_seconds, max_diff)


def _bench_forest_predict(seed: int, repeats: int) -> Dict:
    from repro.ml.forest import RandomForestClassifier

    X, y = _classification_problem(seed)
    forest = RandomForestClassifier(
        n_estimators=KERNEL_TREES, seed=seed, n_jobs=1
    ).fit(X, y)
    eval_rng = ensure_rng(seed + 1)
    X_eval = eval_rng.normal(size=(KERNEL_ROWS, KERNEL_FEATURES))
    forest.predict_proba(X_eval)  # warm the padded node arrays

    legacy_seconds, legacy_proba = _best_of(
        lambda: legacy_forest_predict_proba(forest, X_eval), repeats
    )
    new_seconds, new_proba = _best_of(
        lambda: forest.predict_proba(X_eval), repeats
    )
    max_diff = float(np.max(np.abs(legacy_proba - new_proba)))
    return _entry(legacy_seconds, new_seconds, max_diff)


def _resample_workload(seed: int) -> List[np.ndarray]:
    """Mixed-length traces like a duration sweep produces."""
    rng = ensure_rng(seed)
    lengths = [29, 160, 283, 1, 512]
    return [
        rng.normal(size=lengths[i % len(lengths)])
        for i in range(KERNEL_ROWS)
    ]


def _bench_resample(seed: int, repeats: int) -> Dict:
    from repro.core.features import resample_batch

    values_list = _resample_workload(seed)
    legacy_seconds, legacy_matrix = _best_of(
        lambda: legacy_resample_loop(values_list, KERNEL_RESAMPLE_POINTS),
        repeats,
    )
    new_seconds, new_matrix = _best_of(
        lambda: resample_batch(values_list, KERNEL_RESAMPLE_POINTS), repeats
    )
    max_diff = float(np.max(np.abs(legacy_matrix - new_matrix)))
    return _entry(legacy_seconds, new_seconds, max_diff)


def _bench_summary(seed: int, repeats: int) -> Dict:
    from repro.core.features import summary_features

    rng = ensure_rng(seed)
    matrix = rng.normal(size=(KERNEL_ROWS, KERNEL_RESAMPLE_POINTS))
    legacy_seconds, legacy_summary = _best_of(
        lambda: legacy_summary_features_loop(matrix), repeats
    )
    new_seconds, new_summary = _best_of(
        lambda: summary_features(matrix), repeats
    )
    max_diff = float(np.max(np.abs(legacy_summary - new_summary)))
    return _entry(legacy_seconds, new_seconds, max_diff)


def _bench_kfold(seed: int, repeats: int) -> Dict:
    from repro.ml.validation import stratified_kfold_indices

    _, y = _classification_problem(seed)
    legacy_seconds, legacy_folds = _best_of(
        lambda: legacy_stratified_kfold_indices(y, 5, seed=seed), repeats
    )
    new_seconds, new_folds = _best_of(
        lambda: stratified_kfold_indices(y, 5, seed=seed), repeats
    )
    max_diff = 0.0
    if len(legacy_folds) != len(new_folds):
        max_diff = float("inf")
    else:
        for old, new in zip(legacy_folds, new_folds):
            if not np.array_equal(old, new):
                max_diff = float("inf")
    return _entry(legacy_seconds, new_seconds, max_diff)


def _bench_archive_load(seed: int, repeats: int) -> Dict:
    from repro.core.io import TraceArchiveReader, TraceArchiveWriter
    from repro.core.traces import Trace

    rng = ensure_rng(seed)
    with tempfile.TemporaryDirectory() as tmp:
        archive = Path(tmp) / "kernel_bench_archive"
        with TraceArchiveWriter(archive, meta={"bench": "kernels"}) as writer:
            for index in range(40):
                n = 2000
                writer.append(
                    Trace(
                        times=0.5 + np.arange(n) * 1e-3,
                        values=rng.integers(600, 900, size=n),
                        domain="fpga",
                        quantity="current",
                        label=f"model-{index % KERNEL_CLASSES:02d}",
                    )
                )

        legacy_seconds, plain = _best_of(
            lambda: TraceArchiveReader(archive, mmap=False).load_traceset(),
            repeats,
        )
        new_seconds, mapped = _best_of(
            lambda: TraceArchiveReader(archive, mmap=True).load_traceset(),
            repeats,
        )
        max_diff = 0.0
        for old, new in zip(plain, mapped):
            if not np.array_equal(old.times, new.times) or not np.array_equal(
                old.values, new.values
            ):
                max_diff = float("inf")
    return _entry(legacy_seconds, new_seconds, max_diff)


#: Kernel name -> benchmark function, in report order.
KERNEL_BENCHES = {
    "tree_fit": _bench_tree_fit,
    "forest_fit": _bench_forest_fit,
    "forest_predict": _bench_forest_predict,
    "resample": _bench_resample,
    "summary": _bench_summary,
    "kfold": _bench_kfold,
    "archive_load": _bench_archive_load,
}


def run_kernel_bench(seed: int = 0, repeats: int = 3) -> Dict:
    """Time every reworked kernel against its legacy twin.

    Returns ``{kernel: {legacy_seconds, vectorized_seconds, speedup,
    identical, max_abs_diff}}`` with times as best-of-``repeats``.
    ``identical`` must be true for every kernel — the legacy
    implementations define correctness.
    """
    return {
        name: bench(seed, repeats) for name, bench in KERNEL_BENCHES.items()
    }
