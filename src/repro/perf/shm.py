"""Zero-copy data plane for parallel fan-out.

The fork-per-call engine of PR 1 shipped every task's arrays through
pickle: a forest fit pickled the whole ``(X, y)`` matrix once per tree
batch, and the CV grid pickled each cell's feature matrix once per
fold.  On the persistent :class:`~repro.perf.pool.WorkerPool` the
copies get worse — workers forked at pool start never see arrays the
parent builds later — so the data plane moves out of the pickle stream
entirely:

* :class:`SharedArena` packs a batch of arrays into one
  :class:`multiprocessing.shared_memory.SharedMemory` segment and
  hands back :class:`ShmSlice` descriptors — ``(segment name, dtype,
  shape, offset)`` — that cost a few hundred bytes to pickle no matter
  how large the arrays are.
* :class:`MmapSlice` is the on-disk twin: a byte range inside an
  uncompressed v2-archive chunk (located by
  :func:`repro.core.io.npz_member_layout`) that workers map straight
  off disk, so archive → worker is zero-copy end to end.
* :func:`resolve_array` turns any of the three spellings — a plain
  ``ndarray`` (the serial path), a :class:`ShmSlice`, a
  :class:`MmapSlice` — back into an array, attaching segments through
  a per-process registry that the pool worker loop drains after every
  task (:func:`release_attachments`).

Resolved views are read-only: tasks that need to write take copies
(exactly what fancy indexing like ``X[sample]`` already does), so a
worker can never corrupt another worker's input.

Platforms without POSIX shared memory degrade transparently:
:func:`publish_arrays` falls back to yielding the arrays themselves,
which ride the pickle stream as before — slower, never wrong.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "ShmSlice",
    "MmapSlice",
    "SharedArena",
    "publish_arrays",
    "resolve_array",
    "release_attachments",
    "shm_available",
]

#: Alignment of each array inside an arena segment (cache-line).
_ALIGN = 64

#: Monotone counter making segment names unique within this process.
_SEGMENT_COUNTER = 0


def shm_available() -> bool:
    """True when POSIX shared memory can back the zero-copy plane."""
    return _shared_memory is not None and os.name == "posix"


@dataclass(frozen=True)
class ShmSlice:
    """One array inside a shared-memory segment.

    The descriptor is everything a worker needs to reconstruct a
    zero-copy view: attach the segment by name, wrap ``shape`` x
    ``dtype`` bytes starting at ``offset``.
    """

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class MmapSlice:
    """One array inside an uncompressed file on disk (npy payload).

    The archive twin of :class:`ShmSlice`: v2 chunk ``.npz`` members
    are STORED, so their payload is one contiguous byte range that
    any process can ``np.memmap`` without reading the zip layer.
    """

    path: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int
    order: str = "C"


#: Segments attached by :func:`resolve_array` in this process, kept
#: open until :func:`release_attachments` — a resolved view must not
#: outlive its segment mapping.
_ATTACHED: Dict[str, "_shared_memory.SharedMemory"] = {}

#: Arenas created by this process and still open, by segment name:
#: when a descriptor resolves in its creating process (a fan-out that
#: degraded to the serial loop), the view comes straight off the
#: arena's own mapping instead of a second attach.
_LOCAL_ARENAS: Dict[str, "SharedArena"] = {}


def _unregister_attachment(segment) -> None:
    """Drop an attach-side resource-tracker registration.

    Attaching a segment re-registers its name with the resource
    tracker (shared with the parent under fork), so a worker's
    attachment would make the tracker try to unlink a segment the
    parent already unlinked — harmless but noisy.  Ownership stays
    with the creating process; attachments are tracked here instead,
    via :data:`_ATTACHED`.
    """
    try:  # pragma: no cover - depends on stdlib internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def resolve_array(obj) -> np.ndarray:
    """Materialize one task input: ndarray, shm slice, or mmap slice.

    Plain arrays pass through untouched (the serial / pickled path).
    Descriptors come back as *read-only* zero-copy views; callers that
    mutate must copy first.
    """
    if isinstance(obj, ShmSlice):
        arena = _LOCAL_ARENAS.get(obj.segment)
        if arena is not None:
            segment = arena._segment
        else:
            segment = _ATTACHED.get(obj.segment)
            if segment is None:
                segment = _shared_memory.SharedMemory(name=obj.segment)
                _unregister_attachment(segment)
                _ATTACHED[obj.segment] = segment
        view = np.ndarray(
            obj.shape,
            dtype=np.dtype(obj.dtype),
            buffer=segment.buf,
            offset=obj.offset,
        )
        view.flags.writeable = False
        return view
    if isinstance(obj, MmapSlice):
        return np.memmap(
            obj.path,
            dtype=np.dtype(obj.dtype),
            mode="r",
            offset=obj.offset,
            shape=obj.shape,
            order=obj.order,
        )
    return np.asarray(obj)


def release_attachments() -> int:
    """Close every segment this process attached; returns the count.

    The pool worker loop calls this after each task's result has been
    serialized, so attachments never outlive the task that resolved
    them and unlinked segments free their memory promptly.
    """
    count = len(_ATTACHED)
    for segment in _ATTACHED.values():
        try:
            segment.close()
        except OSError:  # pragma: no cover - already gone
            pass
    _ATTACHED.clear()
    return count


def _aligned(size: int) -> int:
    return (size + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArena:
    """A batch of arrays packed into one shared-memory segment.

    Args:
        arrays: the arrays to publish; each is copied into the segment
            once (the last copy these bytes ever make — workers map
            them in place).

    The arena owns the segment: :meth:`close` unlinks it.  Workers
    holding attachments keep the memory alive until they release, so
    the parent may unlink as soon as the fan-out returns.
    """

    def __init__(self, arrays: Sequence[np.ndarray]):
        global _SEGMENT_COUNTER
        arrays = [np.ascontiguousarray(array) for array in arrays]
        offsets = []
        cursor = 0
        for array in arrays:
            offsets.append(cursor)
            cursor += _aligned(max(1, array.nbytes))
        name = None
        while True:
            _SEGMENT_COUNTER += 1
            candidate = f"amperebleed-{os.getpid()}-{_SEGMENT_COUNTER}"
            try:
                self._segment = _shared_memory.SharedMemory(
                    name=candidate, create=True, size=max(1, cursor)
                )
                name = candidate
                break
            except FileExistsError:  # pragma: no cover - stale leftover
                continue
        self._name = name
        _LOCAL_ARENAS[name] = self
        self.slices: Tuple[ShmSlice, ...] = tuple(
            ShmSlice(
                segment=name,
                dtype=array.dtype.str,
                shape=tuple(array.shape),
                offset=offset,
            )
            for array, offset in zip(arrays, offsets)
        )
        for array, offset in zip(arrays, offsets):
            target = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=self._segment.buf,
                offset=offset,
            )
            target[...] = array
        self._closed = False

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        _LOCAL_ARENAS.pop(self._name, None)
        try:
            self._segment.close()
            self._segment.unlink()
        except OSError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SharedArena({len(self.slices)} arrays in "
            f"{self.slices[0].segment if self.slices else '<empty>'})"
        )


@contextmanager
def publish_arrays(
    arrays: Sequence[np.ndarray], enabled: bool = True
) -> Iterator[Tuple[Union[np.ndarray, ShmSlice], ...]]:
    """Publish arrays for a fan-out; yield what tasks should carry.

    With shared memory available (and ``enabled``), yields one
    :class:`ShmSlice` per array and unlinks the backing segment when
    the block exits.  Otherwise yields the arrays themselves, so call
    sites need no feature-detection branches — tasks carry whatever
    this yields and :func:`resolve_array` undoes it on the other side.
    """
    arrays = [np.asarray(array) for array in arrays]
    shareable = all(not array.dtype.hasobject for array in arrays)
    if not enabled or not shareable or not shm_available():
        yield tuple(arrays)
        return
    arena: Optional[SharedArena] = None
    try:
        arena = SharedArena(arrays)
    except OSError:  # pragma: no cover - e.g. /dev/shm full or absent
        yield tuple(np.asarray(array) for array in arrays)
        return
    try:
        yield arena.slices
    finally:
        arena.close()
