"""Persistent, crash-tolerant fork worker pool.

PR 1's :func:`repro.perf.parallel_map` forked a fresh
``ProcessPoolExecutor`` per call: every fan-out paid pool start-up,
interpreter warm-up, and full-array pickling — enough that
``BENCH_fingerprint.json`` recorded parallel *slowdowns* on small
stages.  :class:`WorkerPool` replaces that with workers forked **once**
(warm imports inherited from the parent) and reused across every stage
of a run, fed through per-worker task queues:

* **Deterministic dispatch.**  Tasks are assigned round-robin in
  submission order and results reassembled by task id, so
  :meth:`map` returns ``[fn(x) for x in items]`` in order — the exact
  :func:`parallel_map` contract — at any worker count.  Task payloads
  are pickled *before* queueing (plain bytes ride the queue feeder
  thread), and each worker pickles its result before releasing its
  shared-memory attachments, so zero-copy views never outlive their
  segment.
* **Exact crash ownership.**  Each worker owns a dedicated task
  queue, so when a worker dies mid-task the pool knows precisely
  which submissions are lost: it respawns the worker with a fresh
  queue and resubmits those payloads in their original order.
  Resubmission is bounded by a :class:`repro.faults.RetryPolicy`
  (``max_retries`` re-runs per task, same machinery the resilient
  sampler uses for flaky sensor reads); a task that keeps killing its
  worker fails its future with :class:`WorkerCrashError` instead of
  wedging the pool.
* **Concurrent submitters.**  :meth:`submit` is thread-safe and a
  daemon collector thread resolves futures as results arrive, so the
  fleet scheduler can feed jobs from many asyncio executor threads
  while a forest fit maps tree batches through the same pool.
* **Deadlines & hung-worker reaping.**  A task submitted with a
  ``deadline_s`` wall-clock budget is watched: a worker still holding
  the task past its deadline — dead-but-undetected *or* merely hung
  (a SIGSTOPped process is alive but will never answer) — is
  SIGKILLed and the task resubmitted with a fresh budget, bounded by
  the same retry policy; exhaustion surfaces
  :class:`TaskDeadlineError` instead of a silent hang.  Every caller
  blocked in :meth:`PoolFuture.result` doubles as a watchdog, so the
  pool cannot strand a waiter even if the collector thread itself
  dies.

All shutdown/reap join timeouts and the sweep cadence live in
:class:`PoolConfig`, so tests and the chaos harness can tighten them.
Workers run with the :func:`repro.perf.executor.in_worker` flag set,
so nested parallel stages inside a task degrade to serial loops
exactly as before.  The module-level :func:`get_pool` singleton is the
way in; ``AMPEREBLEED_POOL=0`` (see :func:`repro.perf.config.
pool_enabled`) switches :func:`parallel_map` back to fork-per-call.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
from dataclasses import dataclass
from queue import Empty
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.faults.policy import RetryPolicy
from repro.perf.executor import _fork_context, _mark_worker
from repro.perf.shm import release_attachments

_T = TypeVar("_T")
_R = TypeVar("_R")

__all__ = [
    "PoolConfig",
    "PoolFuture",
    "TaskDeadlineError",
    "WorkerCrashError",
    "WorkerPool",
    "get_pool",
    "shutdown_pool",
]

#: Sent on a task queue to make the worker exit its loop.
_SHUTDOWN = None


@dataclass(frozen=True)
class PoolConfig:
    """Timing knobs for pool supervision (all wall-clock seconds).

    Attributes:
        sweep_interval_s: how long the collector blocks on the result
            queue before sweeping worker liveness and task deadlines;
            a dead or expired worker is detected within this.  Waiting
            callers poll their futures at the same cadence.
        shutdown_join_s: graceful worker join budget at shutdown.
        terminate_join_s: join budget after a terminate at shutdown.
        collector_join_s: collector-thread join budget at shutdown.
        reap_join_s: join budget after the watchdog SIGKILLs a hung
            worker (the respawn scan needs the process reaped).
        default_deadline_s: deadline applied to tasks submitted
            without an explicit one (``None`` = no deadline).
    """

    sweep_interval_s: float = 0.2
    shutdown_join_s: float = 2.0
    terminate_join_s: float = 1.0
    collector_join_s: float = 2.0
    reap_join_s: float = 1.0
    default_deadline_s: Optional[float] = None

    def __post_init__(self):
        for name in (
            "sweep_interval_s",
            "shutdown_join_s",
            "terminate_join_s",
            "collector_join_s",
            "reap_join_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be > 0 or None")


class WorkerCrashError(RuntimeError):
    """A task's worker died more times than the retry policy allows."""


class TaskDeadlineError(WorkerCrashError):
    """A task blew its deadline on every attempt the policy allowed."""


def _run_chunk(task):
    """Run one map chunk: ``(fn, [items])`` → ``[fn(item), ...]``."""
    fn, chunk = task
    return [fn(item) for item in chunk]


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker loop: pull ``(tid, payload)``, run, push ``(tid, body)``.

    The result body is pickled before shared-memory attachments are
    released, so results that read zero-copy views are materialized
    while the mapping is still valid.
    """
    _mark_worker()
    while True:
        message = task_queue.get()
        if message is _SHUTDOWN:
            break
        tid, payload = message
        try:
            fn, item = pickle.loads(payload)
            result = fn(item)
            body = pickle.dumps(
                (True, result), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            try:
                body = pickle.dumps(
                    (False, exc), protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:
                body = pickle.dumps(
                    (False, RuntimeError(repr(exc))),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
        release_attachments()
        result_queue.put((tid, body))


class PoolFuture:
    """Result handle for one submitted task."""

    def __init__(self, tid: int, pool: Optional["WorkerPool"] = None):
        self.tid = tid
        self._pool = pool
        self._event = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None

    def _resolve(self, ok: bool, value) -> None:
        if ok:
            self._value = value
        else:
            self._error = value
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block for the task result; re-raise the task's exception.

        An untimed wait is still bounded: the caller polls at the
        pool's sweep cadence and runs the liveness/deadline sweep
        itself each tick, so a worker that died after dequeueing the
        task — or a collector thread that died outright — resolves the
        future with :class:`WorkerCrashError` instead of stranding the
        wait forever.
        """
        if timeout is not None:
            if not self._event.wait(timeout):
                raise TimeoutError(f"task {self.tid} still pending")
        else:
            interval = (
                self._pool.config.sweep_interval_s
                if self._pool is not None
                else PoolConfig().sweep_interval_s
            )
            while not self._event.wait(interval):
                if self._pool is not None:
                    self._pool._watch()
        if self._error is not None:
            raise self._error
        return self._value


class _Worker:
    """One pool process plus its dedicated task queue."""

    def __init__(self, context, worker_id: int, result_queue):
        self.id = worker_id
        self.queue = context.Queue()
        self.process = context.Process(
            target=_worker_main,
            args=(worker_id, self.queue, result_queue),
            daemon=True,
            name=f"amperebleed-pool-{worker_id}",
        )
        self.process.start()

    def retire(self) -> None:
        """Drop the queue of a dead/stopping worker without blocking."""
        try:
            self.queue.close()
            self.queue.cancel_join_thread()
        except (OSError, ValueError):  # pragma: no cover
            pass


class _Pending:
    """Parent-side record of one in-flight task."""

    __slots__ = (
        "payload",
        "future",
        "worker_slot",
        "attempts",
        "deadline_s",
        "deadline_at",
        "expired",
    )

    def __init__(
        self,
        payload: bytes,
        future: PoolFuture,
        worker_slot: int,
        deadline_s: Optional[float] = None,
    ):
        self.payload = payload
        self.future = future
        self.worker_slot = worker_slot
        self.attempts = 0
        self.deadline_s = deadline_s
        self.expired = False
        self.rearm()

    def rearm(self) -> None:
        """Start (or restart) the wall-clock deadline for one attempt."""
        self.deadline_at = (
            time.monotonic() + self.deadline_s
            if self.deadline_s is not None
            else None
        )


class WorkerPool:
    """Long-lived fork pool with deterministic dispatch and respawn.

    Args:
        workers: number of worker processes (>= 1).
        retry_policy: bounds crash resubmission; ``max_retries`` is the
            number of times one task may be re-run after its worker
            died (default: the resilient sampler's policy, 3).
        config: supervision timing knobs (sweep cadence, shutdown and
            reap join budgets, default task deadline).
    """

    def __init__(
        self,
        workers: int,
        retry_policy: Optional[RetryPolicy] = None,
        config: Optional[PoolConfig] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        context = _fork_context()
        if context is None:
            raise RuntimeError("fork start method unavailable")
        self.workers = workers
        self.retry_policy = retry_policy or RetryPolicy()
        self.config = config or PoolConfig()
        self._context = context
        self._results = context.Queue()
        self._lock = threading.Lock()
        self._next_tid = 0
        self._pending: Dict[int, _Pending] = {}
        self._closed = False
        self._respawns = 0
        self._slots: List[_Worker] = [
            _Worker(context, slot, self._results) for slot in range(workers)
        ]
        self._collector = threading.Thread(
            target=self._collect, daemon=True, name="amperebleed-pool-collect"
        )
        self._collector.start()

    # -- submission ---------------------------------------------------

    def submit(
        self,
        fn: Callable[[_T], _R],
        item: _T,
        *,
        deadline_s: Optional[float] = None,
    ) -> PoolFuture:
        """Queue ``fn(item)`` on the next worker (round-robin).

        ``deadline_s`` caps one attempt's wall-clock time; a worker
        still holding the task past that budget is SIGKILLed and the
        task resubmitted with a fresh budget, up to the retry policy.
        ``None`` falls back to ``config.default_deadline_s``.
        """
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 or None")
        payload = pickle.dumps((fn, item), protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            tid = self._next_tid
            self._next_tid += 1
            slot = tid % self.workers
            future = PoolFuture(tid, pool=self)
            self._pending[tid] = _Pending(payload, future, slot, deadline_s)
            self._slots[slot].queue.put((tid, payload))
        return future

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Sequence[_T],
        chunksize: int = 1,
    ) -> List[_R]:
        """``[fn(item) for item in items]`` — same values, same order.

        Items are grouped into ``chunksize`` batches (one pickled task
        each, as ``ProcessPoolExecutor.map`` would) and results
        reassembled in submission order.
        """
        items = list(items)
        chunksize = max(1, chunksize)
        chunks = [
            items[start : start + chunksize]
            for start in range(0, len(items), chunksize)
        ]
        futures = [self.submit(_run_chunk, (fn, chunk)) for chunk in chunks]
        out: List[_R] = []
        for future in futures:
            out.extend(future.result())
        return out

    # -- collection / crash recovery ---------------------------------

    def _collect(self) -> None:
        while True:
            try:
                tid, body = self._results.get(
                    timeout=self.config.sweep_interval_s
                )
            except (Empty, OSError, ValueError):
                if self._closed:
                    return
                self._sweep()
                continue
            if self._closed:
                return
            with self._lock:
                record = self._pending.pop(tid, None)
            if record is None:  # duplicate after a respawn resubmit
                continue
            try:
                ok, value = pickle.loads(body)
            except Exception as error:
                # An undecodable body (e.g. a task exception whose
                # class does not survive a pickle round-trip) must
                # fail *that task* — never the collector thread, which
                # every other future depends on.
                record.future._resolve(
                    False,
                    RuntimeError(
                        f"task {tid} returned an undecodable result: "
                        f"{type(error).__name__}: {error}"
                    ),
                )
                continue
            record.future._resolve(ok, value)

    def _watch(self) -> None:
        """Caller-side supervision tick (run from untimed waits).

        Runs the same sweep the collector runs, then — if the
        collector thread itself has died — fails every pending future
        so no caller is left waiting on a thread that will never post.
        """
        self._sweep()
        with self._lock:
            if self._closed or self._collector.is_alive():
                return
            orphaned = list(self._pending.values())
            self._pending.clear()
        for record in orphaned:
            record.future._resolve(
                False,
                WorkerCrashError(
                    "pool collector thread died with tasks pending"
                ),
            )

    def _sweep(self) -> None:
        """Reap hung workers, respawn dead ones, resubmit lost tasks.

        Phase one is the deadline watchdog: any worker holding a task
        past its wall-clock budget is SIGKILLed — that covers workers
        that are alive but wedged (SIGSTOP, livelock), which the
        liveness scan alone would never catch.  Phase two is the
        original crash recovery: dead workers are respawned and their
        in-flight tasks resubmitted in order, bounded by the retry
        policy; a task that expired on its last allowed attempt fails
        with :class:`TaskDeadlineError`.
        """
        with self._lock:
            if self._closed:
                return
            now = time.monotonic()
            hung_slots = set()
            for record in self._pending.values():
                if record.deadline_at is not None and now >= record.deadline_at:
                    record.expired = True
                    hung_slots.add(record.worker_slot)
            for slot in hung_slots:
                process = self._slots[slot].process
                if process.is_alive():
                    process.kill()
                    process.join(timeout=self.config.reap_join_s)
            for slot, worker in enumerate(self._slots):
                if worker.process.is_alive():
                    continue
                worker.retire()
                self._respawns += 1
                replacement = _Worker(self._context, worker.id, self._results)
                self._slots[slot] = replacement
                lost = sorted(
                    tid
                    for tid, record in self._pending.items()
                    if record.worker_slot == slot
                )
                for tid in lost:
                    record = self._pending[tid]
                    record.attempts += 1
                    if record.attempts > self.retry_policy.max_retries:
                        del self._pending[tid]
                        if record.expired:
                            error: WorkerCrashError = TaskDeadlineError(
                                f"task {tid} blew its "
                                f"{record.deadline_s:g}s deadline; worker "
                                f"reaped {record.attempts} times"
                            )
                        else:
                            error = WorkerCrashError(
                                f"task {tid} crashed its worker "
                                f"{record.attempts} times"
                            )
                        record.future._resolve(False, error)
                        continue
                    record.rearm()
                    replacement.queue.put((tid, record.payload))

    # -- lifecycle ----------------------------------------------------

    @property
    def respawns(self) -> int:
        """Workers respawned after dying (telemetry for the fleet)."""
        return self._respawns

    def shutdown(self) -> None:
        """Stop workers and fail any still-pending futures (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        for record in pending:
            record.future._resolve(
                False, RuntimeError("pool shut down with task pending")
            )
        for worker in self._slots:
            try:
                worker.queue.put(_SHUTDOWN)
            except (OSError, ValueError):  # pragma: no cover
                pass
        for worker in self._slots:
            worker.process.join(timeout=self.config.shutdown_join_s)
            if worker.process.is_alive():  # pragma: no cover - stuck task
                worker.process.terminate()
                worker.process.join(timeout=self.config.terminate_join_s)
            worker.retire()
        self._collector.join(timeout=self.config.collector_join_s)


#: Process-wide pool shared by every parallel stage (lazily built).
_POOL: Optional[WorkerPool] = None
_POOL_PID: Optional[int] = None
_POOL_LOCK = threading.Lock()


def get_pool(workers: int) -> WorkerPool:
    """The shared pool, grown to at least ``workers`` wide.

    One pool serves the whole process; asking for more workers than it
    currently has replaces it with a wider one (results are identical
    at any width, so shrinking requests reuse the existing pool).  A
    pool inherited across a ``fork`` is stale and rebuilt.
    """
    global _POOL, _POOL_PID
    with _POOL_LOCK:
        if _POOL is not None and (
            _POOL_PID != os.getpid() or _POOL.workers < workers
        ):
            if _POOL_PID == os.getpid():
                _POOL.shutdown()
            _POOL = None
        if _POOL is None:
            _POOL = WorkerPool(workers)
            _POOL_PID = os.getpid()
        return _POOL


def shutdown_pool() -> None:
    """Tear down the shared pool (tests and interpreter exit)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None and _POOL_PID == os.getpid():
            _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_pool)
