"""Performance engine: worker configuration, parallel execution, timing.

The evaluation pipeline (collect traces -> train forests -> sweep the
Table III grid) is embarrassingly parallel at several granularities;
this package holds the shared machinery:

* :mod:`repro.perf.config` — one place that decides how many workers
  a stage may use (``AMPEREBLEED_WORKERS`` env var, CLI ``--workers``,
  explicit arguments);
* :mod:`repro.perf.executor` — :func:`parallel_map`, a deterministic
  fan-out helper over a forked process pool that degrades to a plain
  serial loop when one worker is requested (or when already inside a
  worker, so nested stages never oversubscribe);
* :mod:`repro.perf.timer` — :class:`StageTimer`, a wall-clock stage
  profiler the benches report from;
* :mod:`repro.perf.bench` — the fingerprinting pipeline bench that
  emits ``BENCH_fingerprint.json`` (per-stage wall time, parallel
  speedup, serial-vs-parallel accuracy parity);
* :mod:`repro.perf.kernels` — per-kernel before/after micro-bench
  pinning each vectorized kernel against its frozen legacy twin in
  :mod:`repro.perf.reference` (timings plus bit-parity verdicts);
* :mod:`repro.perf.pool` — the persistent :class:`WorkerPool` behind
  :func:`parallel_map`: long-lived fork workers with warm imports
  that survive across calls, respawn on death, and keep the
  deterministic task→seed assignment;
* :mod:`repro.perf.shm` — the zero-copy data plane: fit matrices and
  trace batches travel to workers as shared-memory / memmap
  descriptors (:class:`ShmSlice` / :class:`MmapSlice`) instead of
  pickled array copies.
"""

from repro.perf.config import (
    FAULT_RATE_ENV,
    FLEET_BOARDS_ENV,
    POOL_ENV,
    WORKERS_ENV,
    available_cpus,
    fault_rate_from_env,
    fleet_boards_from_env,
    pool_enabled,
    resolve_workers,
)
from repro.perf.executor import in_worker, parallel_map
from repro.perf.timer import StageTimer
from repro.perf.bench import (
    DEFAULT_FAULT_RATES,
    run_fault_sweep,
    run_fingerprint_bench,
    run_pool_head_to_head,
    run_repeated,
    write_bench_json,
)
from repro.perf.kernels import run_kernel_bench
from repro.perf.pool import (
    WorkerCrashError,
    WorkerPool,
    get_pool,
    shutdown_pool,
)
from repro.perf.shm import (
    MmapSlice,
    SharedArena,
    ShmSlice,
    publish_arrays,
    release_attachments,
    resolve_array,
)

__all__ = [
    "FAULT_RATE_ENV",
    "FLEET_BOARDS_ENV",
    "POOL_ENV",
    "WORKERS_ENV",
    "available_cpus",
    "fault_rate_from_env",
    "fleet_boards_from_env",
    "pool_enabled",
    "resolve_workers",
    "in_worker",
    "parallel_map",
    "StageTimer",
    "DEFAULT_FAULT_RATES",
    "run_fault_sweep",
    "run_fingerprint_bench",
    "run_pool_head_to_head",
    "run_repeated",
    "run_kernel_bench",
    "write_bench_json",
    "WorkerCrashError",
    "WorkerPool",
    "get_pool",
    "shutdown_pool",
    "MmapSlice",
    "SharedArena",
    "ShmSlice",
    "publish_arrays",
    "release_attachments",
    "resolve_array",
]
