"""Performance engine: worker configuration, parallel execution, timing.

The evaluation pipeline (collect traces -> train forests -> sweep the
Table III grid) is embarrassingly parallel at several granularities;
this package holds the shared machinery:

* :mod:`repro.perf.config` — one place that decides how many workers
  a stage may use (``AMPEREBLEED_WORKERS`` env var, CLI ``--workers``,
  explicit arguments);
* :mod:`repro.perf.executor` — :func:`parallel_map`, a deterministic
  fan-out helper over a forked process pool that degrades to a plain
  serial loop when one worker is requested (or when already inside a
  worker, so nested stages never oversubscribe);
* :mod:`repro.perf.timer` — :class:`StageTimer`, a wall-clock stage
  profiler the benches report from;
* :mod:`repro.perf.bench` — the fingerprinting pipeline bench that
  emits ``BENCH_fingerprint.json`` (per-stage wall time, parallel
  speedup, serial-vs-parallel accuracy parity);
* :mod:`repro.perf.kernels` — per-kernel before/after micro-bench
  pinning each vectorized kernel against its frozen legacy twin in
  :mod:`repro.perf.reference` (timings plus bit-parity verdicts).
"""

from repro.perf.config import (
    FAULT_RATE_ENV,
    WORKERS_ENV,
    available_cpus,
    fault_rate_from_env,
    resolve_workers,
)
from repro.perf.executor import in_worker, parallel_map
from repro.perf.timer import StageTimer
from repro.perf.bench import (
    DEFAULT_FAULT_RATES,
    run_fault_sweep,
    run_fingerprint_bench,
    write_bench_json,
)
from repro.perf.kernels import run_kernel_bench

__all__ = [
    "FAULT_RATE_ENV",
    "WORKERS_ENV",
    "available_cpus",
    "fault_rate_from_env",
    "resolve_workers",
    "in_worker",
    "parallel_map",
    "StageTimer",
    "DEFAULT_FAULT_RATES",
    "run_fault_sweep",
    "run_fingerprint_bench",
    "run_kernel_bench",
    "write_bench_json",
]
