"""Frozen old-path kernels: the pre-vectorization implementations.

The PR-6 kernel rework (presorted CART, SoA trace batches, zero-copy
archive loads) promises *bit-identical* outputs to the loops it
replaced.  That promise needs something to compare against, so the
replaced implementations live on here, verbatim:

* :class:`LegacyDecisionTreeClassifier` — the per-node
  argsort-per-candidate-feature CART (one ``np.argsort`` + one
  histogram/cumsum pass per feature per node, per-call ``np.stack`` of
  the node probabilities, dict-traversal ``depth``).
* :func:`legacy_forest_predict_proba` — the tree-by-tree accumulation
  loop that rebuilt the class-column mapping on every call.
* :func:`legacy_resample_loop` — one ``np.interp`` call per trace.
* :func:`legacy_summary_features_loop` — one summary row per call.
* :func:`legacy_stratified_kfold_indices` — the per-sample
  Python-append fold assembly.

Two consumers:

* ``tests/test_kernel_parity.py`` pins the new kernels against these on
  the checked-in fixtures and on randomized inputs;
* :mod:`repro.perf.kernels` times old vs. new at bench scale and writes
  the per-kernel before/after numbers into ``BENCH_fingerprint.json``.

Nothing else may import this module — it is a measurement standard,
not a fallback path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ml.tree import _resolve_max_features, gini_impurity
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_int_in_range


class LegacyDecisionTreeClassifier:
    """The pre-presort CART, kept bit-for-bit as it shipped.

    Same constructor contract as
    :class:`repro.ml.tree.DecisionTreeClassifier`; the only difference
    is *how* the identical tree is computed: per-node stable argsorts
    of every candidate feature column and a Python loop over the
    feature subset.
    """

    def __init__(
        self,
        max_depth: int = 32,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, float, None] = None,
        seed: RngLike = None,
    ):
        self.max_depth = require_int_in_range(max_depth, 1, 10_000, "max_depth")
        self.min_samples_split = require_int_in_range(
            min_samples_split, 2, 1 << 31, "min_samples_split"
        )
        self.min_samples_leaf = require_int_in_range(
            min_samples_leaf, 1, 1 << 31, "min_samples_leaf"
        )
        self.max_features = max_features
        self._rng = ensure_rng(seed)
        self._children_left: List[int] = []
        self._children_right: List[int] = []
        self._split_feature: List[int] = []
        self._split_threshold: List[float] = []
        self._node_proba: List[np.ndarray] = []
        self.classes_: Optional[np.ndarray] = None
        self.n_features_: Optional[int] = None
        self.feature_importances_: Optional[np.ndarray] = None

    # ----------------------------------------------------------- fit

    def fit(self, X, y) -> "LegacyDecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one label per row of X")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        n_classes = self.classes_.size
        self._children_left = []
        self._children_right = []
        self._split_feature = []
        self._split_threshold = []
        self._node_proba = []
        importances = np.zeros(self.n_features_)

        n_subset = _resolve_max_features(self.max_features, self.n_features_)

        def new_node(counts: np.ndarray) -> int:
            index = len(self._children_left)
            self._children_left.append(-1)
            self._children_right.append(-1)
            self._split_feature.append(-1)
            self._split_threshold.append(np.nan)
            self._node_proba.append(counts / counts.sum())
            return index

        stack: List[Tuple[np.ndarray, int, int]] = []
        root_counts = np.bincount(encoded, minlength=n_classes).astype(float)
        root = new_node(root_counts)
        stack.append((np.arange(X.shape[0]), root, 0))

        while stack:
            indices, node, depth = stack.pop()
            counts = self._node_proba[node] * indices.size
            if (
                depth >= self.max_depth
                or indices.size < self.min_samples_split
                or np.count_nonzero(counts) <= 1
            ):
                continue
            split = self._best_split(
                X, encoded, indices, n_classes, n_subset
            )
            if split is None:
                continue
            feature, threshold, gain, left_idx, right_idx = split
            self._split_feature[node] = feature
            self._split_threshold[node] = threshold
            importances[feature] += gain * indices.size
            left_counts = np.bincount(
                encoded[left_idx], minlength=n_classes
            ).astype(float)
            right_counts = np.bincount(
                encoded[right_idx], minlength=n_classes
            ).astype(float)
            left = new_node(left_counts)
            right = new_node(right_counts)
            self._children_left[node] = left
            self._children_right[node] = right
            stack.append((left_idx, left, depth + 1))
            stack.append((right_idx, right, depth + 1))

        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    def _best_split(self, X, encoded, indices, n_classes, n_subset):
        n = indices.size
        labels = encoded[indices]
        present, labels = np.unique(labels, return_inverse=True)
        n_present = present.size
        parent_counts = np.bincount(labels, minlength=n_present).astype(float)
        parent_gini = gini_impurity(parent_counts)

        one_hot = np.zeros((n, n_present))
        one_hot[np.arange(n), labels] = 1.0
        scratch = np.empty_like(one_hot)
        left_sizes = np.arange(1, n)
        right_sizes = n - left_sizes
        size_valid = (left_sizes >= self.min_samples_leaf) & (
            right_sizes >= self.min_samples_leaf
        )
        if not size_valid.any():
            return None

        features = self._rng.choice(
            self.n_features_, size=n_subset, replace=False
        )
        best = None
        best_gain = 1e-12
        for feature in features:
            column = X[indices, feature]
            order = np.argsort(column, kind="stable")
            sorted_values = column[order]
            distinct = sorted_values[1:] != sorted_values[:-1]
            if not distinct.any():
                continue
            valid = distinct & size_valid
            if not valid.any():
                continue
            np.take(one_hot, order, axis=0, out=scratch)
            np.cumsum(scratch, axis=0, out=scratch)
            left_counts = scratch[:-1]
            right_counts = parent_counts[np.newaxis, :] - left_counts
            weighted = (
                left_sizes * gini_impurity(left_counts)
                + right_sizes * gini_impurity(right_counts)
            ) / n
            weighted = np.where(valid, weighted, np.inf)
            position = int(np.argmin(weighted))
            gain = parent_gini - weighted[position]
            if gain > best_gain:
                threshold = 0.5 * (
                    sorted_values[position] + sorted_values[position + 1]
                )
                if threshold >= sorted_values[position + 1]:
                    threshold = sorted_values[position]
                best_gain = gain
                best = (int(feature), float(threshold), float(gain), position)
        if best is None:
            return None
        feature, threshold, gain, _ = best
        mask = X[indices, feature] <= threshold
        if not mask.any() or mask.all():
            return None
        return feature, threshold, gain, indices[mask], indices[~mask]

    # ------------------------------------------------------- predict

    def _check_fitted(self):
        if self.classes_ is None:
            raise RuntimeError("tree is not fitted; call fit() first")

    def apply(self, X) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must have shape (n, {self.n_features_}), got {X.shape}"
            )
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        left = np.asarray(self._children_left)
        right = np.asarray(self._children_right)
        feature = np.asarray(self._split_feature)
        threshold = np.asarray(self._split_threshold)
        active = left[nodes] >= 0
        while active.any():
            rows = np.nonzero(active)[0]
            current = nodes[rows]
            goes_left = (
                X[rows, feature[current]] <= threshold[current]
            )
            nodes[rows] = np.where(
                goes_left, left[current], right[current]
            )
            active = left[nodes] >= 0
        return nodes

    def predict_proba(self, X) -> np.ndarray:
        leaves = self.apply(X)
        proba = np.stack(self._node_proba)
        return proba[leaves]

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def node_count(self) -> int:
        return len(self._children_left)

    @property
    def depth(self) -> int:
        """The per-call dict-traversal depth this PR replaced."""
        self._check_fitted()
        depths = {0: 0}
        maximum = 0
        for node in range(self.node_count):
            left = self._children_left[node]
            right = self._children_right[node]
            for child in (left, right):
                if child >= 0:
                    depths[child] = depths[node] + 1
                    maximum = max(maximum, depths[child])
        return maximum


def legacy_forest_predict_proba(forest, X) -> np.ndarray:
    """The pre-batching forest reduction, one tree at a time.

    Works against any fitted forest-shaped object exposing ``trees_``
    (each with ``predict_proba`` and ``classes_``), ``classes_`` and
    ``n_estimators`` — i.e. both the new
    :class:`repro.ml.forest.RandomForestClassifier` and ad-hoc legacy
    ensembles assembled from :class:`LegacyDecisionTreeClassifier`.
    """
    X = np.asarray(X, dtype=np.float64)
    n_classes = forest.classes_.size
    total = np.zeros((X.shape[0], n_classes))
    class_index = {value: i for i, value in enumerate(forest.classes_)}
    for tree in forest.trees_:
        proba = tree.predict_proba(X)
        columns = [class_index[value] for value in tree.classes_]
        total[:, columns] += proba
    return total / forest.n_estimators


def legacy_resample_loop(
    values_list: Sequence[np.ndarray], n_features: int
) -> np.ndarray:
    """One ``np.interp`` call per trace — the pre-batch feature path."""
    from repro.core.features import resample_values

    return np.vstack(
        [resample_values(values, n_features) for values in values_list]
    )


def legacy_summary_features_loop(matrix: np.ndarray) -> np.ndarray:
    """Row-by-row summary features, as 2-D callers had to loop them."""
    from repro.core.features import summary_features

    matrix = np.asarray(matrix, dtype=np.float64)
    return np.vstack([summary_features(row) for row in matrix])


def legacy_stratified_kfold_indices(
    y: np.ndarray, n_folds: int, seed: RngLike = None
) -> List[np.ndarray]:
    """The per-sample Python-append fold assembly."""
    from repro.utils.rng import spawn

    y = np.asarray(y)
    n_folds = require_int_in_range(n_folds, 2, y.size, "n_folds")
    rng = spawn(seed, "kfold")
    folds: List[List[int]] = [[] for _ in range(n_folds)]
    for value in np.unique(y):
        members = np.nonzero(y == value)[0]
        members = rng.permutation(members)
        for position, index in enumerate(members):
            folds[position % n_folds].append(int(index))
    return [np.asarray(sorted(fold), dtype=np.int64) for fold in folds]
