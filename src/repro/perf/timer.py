"""Lightweight wall-clock stage timer for the evaluation benches.

Usage::

    timer = StageTimer()
    with timer.stage("collect"):
        datasets = fingerprinter.collect_datasets()
    with timer.stage("evaluate"):
        results = fingerprinter.evaluate_table3(datasets)
    timer.as_dict()   # {"collect": 4.81, "evaluate": 112.03}

Re-entering a stage name accumulates into the same bucket, so a loop
can be timed under one label.  The timer is deliberately wall-clock
(``perf_counter``): the benches measure end-to-end latency including
process-pool overheads, which CPU-time counters would hide.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List


class StageTimer:
    """Accumulates wall-clock seconds per named stage."""

    def __init__(self):
        self._elapsed: Dict[str, float] = {}
        self._order: List[str] = []

    @contextmanager
    def stage(self, name: str):
        """Time one ``with`` block under ``name`` (accumulating)."""
        name = str(name)
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            if name not in self._elapsed:
                self._elapsed[name] = 0.0
                self._order.append(name)
            self._elapsed[name] += elapsed

    def elapsed(self, name: str) -> float:
        """Accumulated seconds of one stage (0.0 if never entered)."""
        return self._elapsed.get(str(name), 0.0)

    @property
    def total(self) -> float:
        """Sum of all stage times."""
        return sum(self._elapsed.values())

    def as_dict(self) -> Dict[str, float]:
        """Stage -> seconds, in first-entry order."""
        return {name: self._elapsed[name] for name in self._order}

    def __repr__(self) -> str:
        stages = ", ".join(
            f"{name}={self._elapsed[name]:.3f}s" for name in self._order
        )
        return f"StageTimer({stages})"
