"""Runtime configuration knobs for the evaluation engine.

The library reads exactly two environment variables, both resolved
here and nowhere else (README's "Environment knobs" table documents
them):

* ``AMPEREBLEED_WORKERS`` — via :func:`resolve_workers`.  Every
  parallel stage funnels through it so one knob controls the whole
  pipeline: an explicit ``workers`` argument (CLI ``--workers`` plumbs
  through here) always wins; otherwise the environment variable
  applies; otherwise the stage's default (serial unless stated
  otherwise).  ``workers=0`` or a negative value means "one worker per
  available CPU".  The resolution never exceeds what the scheduler
  actually grants this process (cgroup CPU masks on shared boxes), so
  asking for 16 workers on a 4-core container fans out 4 wide.
* ``AMPEREBLEED_FULL`` — via :func:`full_scale`.  Opt-in to
  paper-scale benchmark configurations (10 k samples per level,
  100-tree forests, 10-fold CV) instead of the minutes-range defaults.
* ``AMPEREBLEED_FAULT_RATE`` — via :func:`fault_rate_from_env`.  A
  rate in [0, 1] that arms :meth:`repro.faults.FaultPlan.at_rate` on
  every session built without an explicit ``faults=`` argument (unset
  or ``0`` means no fault injection).
* ``AMPEREBLEED_POOL`` — via :func:`pool_enabled`.  On by default;
  ``0``/``false``/``off`` routes :func:`repro.perf.parallel_map` back
  to the legacy fork-per-call ``ProcessPoolExecutor`` instead of the
  persistent :class:`repro.perf.pool.WorkerPool` (an escape hatch and
  the bench's head-to-head baseline).
* ``AMPEREBLEED_FLEET_BOARDS`` — via :func:`fleet_boards_from_env`.
  Comma-separated board names restricting which catalog boards the
  fleet scheduler and ``bench --fleet`` shard across (unset means the
  whole catalog).
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "AMPEREBLEED_WORKERS"

#: Environment variable opting benches into full paper scale.
FULL_ENV = "AMPEREBLEED_FULL"

#: Environment variable arming a default fault-injection rate.
FAULT_RATE_ENV = "AMPEREBLEED_FAULT_RATE"

#: Environment variable disabling the persistent worker pool.
POOL_ENV = "AMPEREBLEED_POOL"

#: Environment variable restricting which boards the fleet targets.
FLEET_BOARDS_ENV = "AMPEREBLEED_FLEET_BOARDS"

#: Hard cap: more workers than this is always a configuration mistake.
MAX_WORKERS = 256


def full_scale() -> bool:
    """True when paper-scale benchmark runs are requested.

    Reads ``AMPEREBLEED_FULL``; any of ``1``/``true``/``yes``/``on``
    (case-insensitive) enables full scale.
    """
    return os.environ.get(FULL_ENV, "").strip().lower() in (
        "1", "true", "yes", "on"
    )


def fault_rate_from_env() -> float:
    """The fault rate ``AMPEREBLEED_FAULT_RATE`` requests (default 0).

    Sessions built without an explicit ``faults=`` argument arm
    :meth:`repro.faults.FaultPlan.at_rate` at this rate; ``0`` (or an
    unset variable) arms nothing.
    """
    env = os.environ.get(FAULT_RATE_ENV, "").strip()
    if not env:
        return 0.0
    try:
        rate = float(env)
    except ValueError:
        raise ValueError(
            f"{FAULT_RATE_ENV} must be a float in [0, 1], got {env!r}"
        ) from None
    if not (0.0 <= rate <= 1.0):
        raise ValueError(
            f"{FAULT_RATE_ENV} must be in [0, 1], got {rate}"
        )
    return rate


def pool_enabled() -> bool:
    """True unless ``AMPEREBLEED_POOL`` opts out of the persistent pool.

    Any of ``0``/``false``/``no``/``off`` (case-insensitive) disables
    the pool, restoring the fork-per-call executor — results are
    identical either way; only the fan-out cost differs.
    """
    return os.environ.get(POOL_ENV, "").strip().lower() not in (
        "0", "false", "no", "off"
    )


def fleet_boards_from_env() -> Optional[list]:
    """Board names ``AMPEREBLEED_FLEET_BOARDS`` selects (None = all).

    The value is a comma-separated list of catalog names; whitespace
    around entries is ignored and empty entries dropped.  Validation
    against the catalog happens at fleet-build time, where the error
    can name the available boards.
    """
    env = os.environ.get(FLEET_BOARDS_ENV, "").strip()
    if not env:
        return None
    names = [part.strip() for part in env.split(",") if part.strip()]
    return names or None


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_workers(
    workers: Optional[int] = None, default: int = 1
) -> int:
    """Resolve a worker count for one parallel stage.

    Args:
        workers: explicit request; ``None`` defers to the environment,
            ``0`` or negative means "all available CPUs".
        default: stage default when neither an explicit count nor the
            ``AMPEREBLEED_WORKERS`` environment variable is set.

    Returns:
        An integer >= 1.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = default
    workers = int(workers)
    if workers <= 0:
        workers = available_cpus()
    if workers > MAX_WORKERS:
        raise ValueError(
            f"workers={workers} exceeds the sanity cap of {MAX_WORKERS}"
        )
    return max(1, workers)
