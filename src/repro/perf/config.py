"""Worker-count resolution for the parallel evaluation engine.

Every parallel stage funnels through :func:`resolve_workers` so one
knob controls the whole pipeline:

* an explicit ``workers`` argument (CLI ``--workers`` plumbs through
  here) always wins;
* otherwise the ``AMPEREBLEED_WORKERS`` environment variable applies;
* otherwise the stage's default (serial unless stated otherwise).

``workers=0`` or a negative value means "one worker per available
CPU".  The resolution never exceeds what the scheduler actually grants
this process (cgroup CPU masks on shared boxes), so asking for 16
workers on a 4-core container fans out 4 wide.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "AMPEREBLEED_WORKERS"

#: Hard cap: more workers than this is always a configuration mistake.
MAX_WORKERS = 256


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_workers(
    workers: Optional[int] = None, default: int = 1
) -> int:
    """Resolve a worker count for one parallel stage.

    Args:
        workers: explicit request; ``None`` defers to the environment,
            ``0`` or negative means "all available CPUs".
        default: stage default when neither an explicit count nor the
            ``AMPEREBLEED_WORKERS`` environment variable is set.

    Returns:
        An integer >= 1.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = default
    workers = int(workers)
    if workers <= 0:
        workers = available_cpus()
    if workers > MAX_WORKERS:
        raise ValueError(
            f"workers={workers} exceeds the sanity cap of {MAX_WORKERS}"
        )
    return max(1, workers)
