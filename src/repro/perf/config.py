"""Runtime configuration knobs for the evaluation engine.

The library reads exactly two environment variables, both resolved
here and nowhere else (README's "Environment knobs" table documents
them):

* ``AMPEREBLEED_WORKERS`` — via :func:`resolve_workers`.  Every
  parallel stage funnels through it so one knob controls the whole
  pipeline: an explicit ``workers`` argument (CLI ``--workers`` plumbs
  through here) always wins; otherwise the environment variable
  applies; otherwise the stage's default (serial unless stated
  otherwise).  ``workers=0`` or a negative value means "one worker per
  available CPU".  The resolution never exceeds what the scheduler
  actually grants this process (cgroup CPU masks on shared boxes), so
  asking for 16 workers on a 4-core container fans out 4 wide.
* ``AMPEREBLEED_FULL`` — via :func:`full_scale`.  Opt-in to
  paper-scale benchmark configurations (10 k samples per level,
  100-tree forests, 10-fold CV) instead of the minutes-range defaults.
* ``AMPEREBLEED_FAULT_RATE`` — via :func:`fault_rate_from_env`.  A
  rate in [0, 1] that arms :meth:`repro.faults.FaultPlan.at_rate` on
  every session built without an explicit ``faults=`` argument (unset
  or ``0`` means no fault injection).
* ``AMPEREBLEED_POOL`` — via :func:`pool_enabled`.  On by default;
  ``0``/``false``/``off`` routes :func:`repro.perf.parallel_map` back
  to the legacy fork-per-call ``ProcessPoolExecutor`` instead of the
  persistent :class:`repro.perf.pool.WorkerPool` (an escape hatch and
  the bench's head-to-head baseline).
* ``AMPEREBLEED_FLEET_BOARDS`` — via :func:`fleet_boards_from_env`.
  Comma-separated board names restricting which catalog boards the
  fleet scheduler and ``bench --fleet`` shard across (unset means the
  whole catalog).
* ``AMPEREBLEED_QUEUE_HWM`` — via :func:`queue_hwm_from_env`.  The
  fleet scheduler's admission high-water mark: at most this many jobs
  enter the run queue; the rest end as explicit ``deferred`` outcomes
  instead of growing the queue without bound (unset or ``0`` means
  unbounded, the historical behavior).
* ``AMPEREBLEED_BREAKER_THRESHOLD`` / ``AMPEREBLEED_BREAKER_COOLDOWN``
  — via :func:`breaker_threshold_from_env` /
  :func:`breaker_cooldown_from_env`.  Override the per-board circuit
  breaker's consecutive-failure trip threshold and base cooldown
  (scheduler ticks) when the scheduler is not handed an explicit
  :class:`repro.resilience.BreakerPolicy`.
* ``AMPEREBLEED_CHAOS`` — via :func:`chaos_scenarios_from_env`.
  Comma-separated chaos-scenario names restricting what ``bench
  --chaos`` runs (unset, ``all``, or ``1`` means every scenario).
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "AMPEREBLEED_WORKERS"

#: Environment variable opting benches into full paper scale.
FULL_ENV = "AMPEREBLEED_FULL"

#: Environment variable arming a default fault-injection rate.
FAULT_RATE_ENV = "AMPEREBLEED_FAULT_RATE"

#: Environment variable disabling the persistent worker pool.
POOL_ENV = "AMPEREBLEED_POOL"

#: Environment variable restricting which boards the fleet targets.
FLEET_BOARDS_ENV = "AMPEREBLEED_FLEET_BOARDS"

#: Environment variable bounding the fleet scheduler's admission queue.
QUEUE_HWM_ENV = "AMPEREBLEED_QUEUE_HWM"

#: Environment variable overriding the breaker's failure threshold.
BREAKER_THRESHOLD_ENV = "AMPEREBLEED_BREAKER_THRESHOLD"

#: Environment variable overriding the breaker's base cooldown (ticks).
BREAKER_COOLDOWN_ENV = "AMPEREBLEED_BREAKER_COOLDOWN"

#: Environment variable selecting which chaos scenarios to run.
CHAOS_ENV = "AMPEREBLEED_CHAOS"

#: Hard cap: more workers than this is always a configuration mistake.
MAX_WORKERS = 256


def full_scale() -> bool:
    """True when paper-scale benchmark runs are requested.

    Reads ``AMPEREBLEED_FULL``; any of ``1``/``true``/``yes``/``on``
    (case-insensitive) enables full scale.
    """
    return os.environ.get(FULL_ENV, "").strip().lower() in (
        "1", "true", "yes", "on"
    )


def fault_rate_from_env() -> float:
    """The fault rate ``AMPEREBLEED_FAULT_RATE`` requests (default 0).

    Sessions built without an explicit ``faults=`` argument arm
    :meth:`repro.faults.FaultPlan.at_rate` at this rate; ``0`` (or an
    unset variable) arms nothing.
    """
    env = os.environ.get(FAULT_RATE_ENV, "").strip()
    if not env:
        return 0.0
    try:
        rate = float(env)
    except ValueError:
        raise ValueError(
            f"{FAULT_RATE_ENV} must be a float in [0, 1], got {env!r}"
        ) from None
    if not (0.0 <= rate <= 1.0):
        raise ValueError(
            f"{FAULT_RATE_ENV} must be in [0, 1], got {rate}"
        )
    return rate


def pool_enabled() -> bool:
    """True unless ``AMPEREBLEED_POOL`` opts out of the persistent pool.

    Any of ``0``/``false``/``no``/``off`` (case-insensitive) disables
    the pool, restoring the fork-per-call executor — results are
    identical either way; only the fan-out cost differs.
    """
    return os.environ.get(POOL_ENV, "").strip().lower() not in (
        "0", "false", "no", "off"
    )


def fleet_boards_from_env() -> Optional[list]:
    """Board names ``AMPEREBLEED_FLEET_BOARDS`` selects (None = all).

    The value is a comma-separated list of catalog names; whitespace
    around entries is ignored and empty entries dropped.  Validation
    against the catalog happens at fleet-build time, where the error
    can name the available boards.
    """
    env = os.environ.get(FLEET_BOARDS_ENV, "").strip()
    if not env:
        return None
    names = [part.strip() for part in env.split(",") if part.strip()]
    return names or None


def queue_hwm_from_env() -> Optional[int]:
    """The scheduler admission bound ``AMPEREBLEED_QUEUE_HWM`` requests.

    ``None`` (unset or ``0``) means unbounded admission — every job
    enters the queue, the historical behavior.  A positive integer
    caps how many jobs are admitted; the overflow is deferred with an
    explicit outcome instead of queued.
    """
    env = os.environ.get(QUEUE_HWM_ENV, "").strip()
    if not env:
        return None
    try:
        hwm = int(env)
    except ValueError:
        raise ValueError(
            f"{QUEUE_HWM_ENV} must be an integer >= 0, got {env!r}"
        ) from None
    if hwm < 0:
        raise ValueError(f"{QUEUE_HWM_ENV} must be >= 0, got {hwm}")
    return hwm or None


def breaker_threshold_from_env() -> Optional[int]:
    """Breaker trip threshold override (None = policy default)."""
    env = os.environ.get(BREAKER_THRESHOLD_ENV, "").strip()
    if not env:
        return None
    try:
        threshold = int(env)
    except ValueError:
        raise ValueError(
            f"{BREAKER_THRESHOLD_ENV} must be an integer >= 1, got {env!r}"
        ) from None
    if threshold < 1:
        raise ValueError(
            f"{BREAKER_THRESHOLD_ENV} must be >= 1, got {threshold}"
        )
    return threshold


def breaker_cooldown_from_env() -> Optional[float]:
    """Breaker base cooldown override in ticks (None = policy default)."""
    env = os.environ.get(BREAKER_COOLDOWN_ENV, "").strip()
    if not env:
        return None
    try:
        cooldown = float(env)
    except ValueError:
        raise ValueError(
            f"{BREAKER_COOLDOWN_ENV} must be a float > 0, got {env!r}"
        ) from None
    if cooldown <= 0:
        raise ValueError(
            f"{BREAKER_COOLDOWN_ENV} must be > 0, got {cooldown}"
        )
    return cooldown


def chaos_scenarios_from_env() -> Optional[list]:
    """Scenario names ``AMPEREBLEED_CHAOS`` selects (None = all).

    Comma-separated scenario names; ``all`` and ``1`` (or unset) mean
    the full suite.  Validation against the known scenarios happens in
    :func:`repro.resilience.chaos.run_chaos_bench`, where the error
    can name what exists.
    """
    env = os.environ.get(CHAOS_ENV, "").strip()
    if not env or env.lower() in ("1", "all"):
        return None
    names = [part.strip() for part in env.split(",") if part.strip()]
    return names or None


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_workers(
    workers: Optional[int] = None, default: int = 1
) -> int:
    """Resolve a worker count for one parallel stage.

    Args:
        workers: explicit request; ``None`` defers to the environment,
            ``0`` or negative means "all available CPUs".
        default: stage default when neither an explicit count nor the
            ``AMPEREBLEED_WORKERS`` environment variable is set.

    Returns:
        An integer >= 1.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = default
    workers = int(workers)
    if workers <= 0:
        workers = available_cpus()
    if workers > MAX_WORKERS:
        raise ValueError(
            f"workers={workers} exceeds the sanity cap of {MAX_WORKERS}"
        )
    return max(1, workers)
