"""The simulated ARM-FPGA SoC: board + rails + sensors + workloads.

:class:`Soc` assembles the full evaluation platform of the paper:

* one :class:`~repro.soc.rails.PowerRail` per monitored supply, with a
  point-of-load regulator, idle draw, and ambient noise;
* one INA226 + hwmon device per board sensor (18 on the ZCU102), so
  the simulated ``/sys/class/hwmon`` tree enumerates like the real one;
* an FPGA :class:`~repro.fpga.fabric.Fabric` for circuit deployment;
* convenience wiring for the paper's victims (power-virus array, RSA
  engine, DPU inference runs attach their timelines to rails here).

An unprivileged attacker interacts with the SoC *only* through
:attr:`Soc.hwmon` (or the higher-level :class:`repro.core.sampler`
machinery): that is the entire attack surface AmpereBleed needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.boards.catalog import BoardSpec, get_board
from repro.boards.zcu102 import (
    SENSITIVE_SENSOR_MAP,
    SensorSpec,
    sensor_map_for,
)
from repro.fpga.fabric import Fabric
from repro.fpga.pdn import VoltageRegulator
from repro.sensors.hwmon import HwmonDevice, HwmonTree
from repro.sensors.ina226 import Ina226
from repro.soc.rails import PowerRail
from repro.soc.workload import ActivityTimeline
from repro.utils.validation import require_one_of

#: hwmon attribute per measured quantity.
QUANTITY_ATTRS: Dict[str, str] = {
    "current": "curr1_input",
    "voltage": "in1_input",
    "power": "power1_input",
}


@dataclass(frozen=True)
class RailNoiseProfile:
    """Ambient noise parameters of one rail domain.

    Attributes:
        power_sigma: RMS ambient power noise per conversion window (W).
        ripple_sigma: RMS regulator ripple per conversion window (V).
    """

    power_sigma: float
    ripple_sigma: float


#: Per-domain ambient noise.  CPU rails are noisy (OS scheduling,
#: interrupts); the FPGA rail is comparatively quiet; DDR sits between.
DEFAULT_NOISE_PROFILES: Dict[str, RailNoiseProfile] = {
    "fpga": RailNoiseProfile(power_sigma=8e-3, ripple_sigma=0.20e-3),
    "fpd": RailNoiseProfile(power_sigma=30e-3, ripple_sigma=0.30e-3),
    "lpd": RailNoiseProfile(power_sigma=5.5e-3, ripple_sigma=0.30e-3),
    "ddr": RailNoiseProfile(power_sigma=4e-3, ripple_sigma=0.30e-3),
    "aux": RailNoiseProfile(power_sigma=2e-3, ripple_sigma=0.30e-3),
}


def _regulator_for(spec: SensorSpec, board: BoardSpec) -> VoltageRegulator:
    """Build the rail regulator for one sensor's supply."""
    if spec.domain in ("fpga", "fpd", "lpd"):
        low, high = board.fpga_voltage_range
        return VoltageRegulator(
            v_set=(low + high) / 2.0, band=(low, high)
        )
    # Non-core rails regulate their nominal voltage within +-5%.
    nominal = spec.nominal_voltage
    return VoltageRegulator(
        v_set=nominal,
        band=(nominal * 0.95, nominal * 1.05),
        r_loadline=1.0e-3,
        k_quadratic=0.0,
    )


class Soc:
    """A simulated ARM-FPGA SoC evaluation board.

    Args:
        board: board name or :class:`BoardSpec` (default ZCU102 — the
            paper's experimental machine).
        seed: experiment seed; keys all sensor noise streams.
        sensors: sensor specs to instantiate (defaults to the ZCU102's
            18 INA226 devices; other boards reuse the same map scaled
            to their sensor count, since per-board BOMs are not public).
        noise_profiles: per-domain ambient noise overrides.
        hardening: optional :class:`repro.core.countermeasures.
            SensorHardening` policy applied to every exported reading
            (used by the mitigation benches).
    """

    def __init__(
        self,
        board="ZCU102",
        seed: Optional[int] = 0,
        sensors: Iterable[SensorSpec] = None,
        noise_profiles: Dict[str, RailNoiseProfile] = None,
        hardening=None,
    ):
        if isinstance(board, str):
            board = get_board(board)
        self.board = board
        self.seed = seed
        self.hardening = hardening
        profiles = dict(DEFAULT_NOISE_PROFILES)
        if noise_profiles:
            profiles.update(noise_profiles)
        self.noise_profiles = profiles

        if sensors is None:
            if board.name == "VCK190":
                from repro.boards.versal import VCK190_SENSORS

                sensors = sensor_map_for(
                    board.ina226_count, base=VCK190_SENSORS
                )
            else:
                sensors = sensor_map_for(board.ina226_count)
        self.sensor_specs: List[SensorSpec] = list(sensors)

        self.fabric = Fabric(board)
        self.fault_plan = None
        self.rails: Dict[str, PowerRail] = {}
        self.hwmon = HwmonTree()
        self._device_by_designator: Dict[str, HwmonDevice] = {}

        for index, spec in enumerate(self.sensor_specs):
            profile = profiles.get(spec.domain, profiles["aux"])
            regulator = _regulator_for(spec, board)
            rail = PowerRail(
                spec.rail,
                regulator=regulator,
                idle_power=spec.idle_current * regulator.v_set,
                noise_power_sigma=profile.power_sigma,
                ripple_sigma=profile.ripple_sigma,
            )
            # One rail per sensor: on these boards every monitored rail
            # has exactly one INA226 (UG1182's PMBus chain).
            self.rails[spec.designator] = rail
            sensor = Ina226(shunt_ohms=spec.shunt_ohms, current_lsb=1e-3)
            device = HwmonDevice(
                index=index,
                name=f"ina226_{spec.designator}",
                sensor=sensor,
                rail=rail,
                seed=seed,
            )
            self.hwmon.register(device)
            self._device_by_designator[spec.designator] = device

    # ----------------------------------------------------------- rails

    def rail(self, key: str) -> PowerRail:
        """Look up a rail by designator (``"u79"``) or domain (``"fpga"``).

        Domain keys resolve through the board's sensitive-sensor map
        (Table II); designators address any of the 18 rails directly.
        """
        designator = SENSITIVE_SENSOR_MAP.get(key, key)
        try:
            return self.rails[designator]
        except KeyError:
            available = sorted(self.rails) + sorted(SENSITIVE_SENSOR_MAP)
            raise KeyError(
                f"unknown rail {key!r}; available: {', '.join(available)}"
            ) from None

    def device(self, key: str) -> HwmonDevice:
        """Look up an hwmon device by designator or domain key."""
        designator = SENSITIVE_SENSOR_MAP.get(key, key)
        try:
            return self._device_by_designator[designator]
        except KeyError:
            available = sorted(self._device_by_designator)
            raise KeyError(
                f"unknown sensor {key!r}; available: {', '.join(available)}"
            ) from None

    def attach_workload(
        self, domain: str, name: str, timeline: ActivityTimeline
    ) -> None:
        """Attach a named workload timeline to a domain's rail."""
        self.rail(domain).attach(name, timeline)

    def detach_workload(self, domain: str, name: str) -> None:
        """Detach a workload from a domain's rail."""
        self.rail(domain).detach(name)

    def replace_workload(
        self, domain: str, name: str, timeline: ActivityTimeline
    ) -> None:
        """Attach a workload, replacing any previous one of that name."""
        self.rail(domain).replace(name, timeline)

    def clear_workloads(self) -> None:
        """Detach every workload from every rail (idle board)."""
        for rail in self.rails.values():
            rail.clear()

    # ---------------------------------------------------------- faults

    def arm_faults(self, plan) -> None:
        """Arm one :class:`repro.faults.FaultPlan` on every hwmon device.

        Each device derives its own fault key from the plan seed and
        its name, so devices fail independently but deterministically.
        ``None`` (or a no-op plan) disarms/changes nothing observable.
        """
        self.fault_plan = plan
        for device in self.hwmon.devices():
            device.arm_faults(plan)

    # -------------------------------------------------------- sampling

    def sample(
        self,
        domain: str,
        quantity: str,
        times: np.ndarray,
        privileged: bool = False,
    ) -> np.ndarray:
        """Poll one sensor channel at each time (integer hwmon units).

        ``quantity`` is one of ``"current"`` (mA), ``"voltage"`` (mV),
        ``"power"`` (uW) — exactly what a read of the corresponding
        sysfs file returns.  When a hardening policy is attached, it
        gates access by ``privileged`` and filters the exported values.
        """
        require_one_of(quantity, QUANTITY_ATTRS, "quantity")
        if self.hardening is not None:
            self.hardening.check_access(privileged)
            times = self.hardening.effective_times(
                np.asarray(times, dtype=np.float64)
            )
        device = self.device(domain)
        values = device.read_series(QUANTITY_ATTRS[quantity], times)
        if self.hardening is not None:
            values = self.hardening.transform(
                values, times, f"{domain}-{quantity}"
            )
        return values

    def sample_faulted(
        self,
        domain: str,
        quantity: str,
        times: np.ndarray,
        privileged: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Poll one channel with per-sample fault annotations.

        The resilient counterpart of :meth:`sample`: returns
        ``(values, transient, gone)`` from :meth:`repro.sensors.hwmon.
        HwmonDevice.read_series_faulted` with any hardening policy
        applied to the values, never raising for scheduled faults.
        """
        require_one_of(quantity, QUANTITY_ATTRS, "quantity")
        times = np.asarray(times, dtype=np.float64)
        if self.hardening is not None:
            self.hardening.check_access(privileged)
            times = self.hardening.effective_times(times)
        device = self.device(domain)
        values, transient, gone = device.read_series_faulted(
            QUANTITY_ATTRS[quantity], times
        )
        if self.hardening is not None:
            values = self.hardening.transform(
                values, times, f"{domain}-{quantity}"
            )
        return values, transient, gone

    def sample_many(
        self,
        channels: Iterable[Tuple[str, str]],
        times,
        privileged: bool = False,
    ) -> Dict[Tuple[str, str], np.ndarray]:
        """Poll several channels, converting each sensor only once.

        ``channels`` is an iterable of ``(domain, quantity)`` pairs;
        ``times`` is either one timestamp array shared by every channel
        or a mapping from channel to its own poll times (concurrent
        polling threads each have their own jittered clock).  Channels
        that share a physical sensor — e.g. the FPGA rail's current,
        voltage and power — are served from a single conversion pass
        over the union of their latch windows, so one victim run's rail
        activity is evaluated once rather than per channel.  Values are
        bit-identical to calling :meth:`sample` per channel.
        """
        channels = [tuple(channel) for channel in channels]
        if not channels:
            return {}
        if len(set(channels)) != len(channels):
            raise ValueError("duplicate channels in sample_many")

        per_channel_times: Dict[Tuple[str, str], np.ndarray] = {}
        for channel in channels:
            domain, quantity = channel
            require_one_of(quantity, QUANTITY_ATTRS, "quantity")
            if isinstance(times, dict):
                try:
                    channel_times = times[channel]
                except KeyError:
                    raise KeyError(
                        f"no poll times for channel {channel!r}"
                    ) from None
            else:
                channel_times = times
            channel_times = np.asarray(channel_times, dtype=np.float64)
            if self.hardening is not None:
                self.hardening.check_access(privileged)
                channel_times = self.hardening.effective_times(channel_times)
            per_channel_times[channel] = channel_times

        # Group channels by physical device; one batched read each.
        by_device: Dict[str, List[Tuple[str, str]]] = {}
        for channel in channels:
            designator = SENSITIVE_SENSOR_MAP.get(channel[0], channel[0])
            by_device.setdefault(designator, []).append(channel)

        values: Dict[Tuple[str, str], np.ndarray] = {}
        for designator, device_channels in by_device.items():
            device = self.device(device_channels[0][0])
            requests = [
                (QUANTITY_ATTRS[quantity], per_channel_times[(domain, quantity)])
                for domain, quantity in device_channels
            ]
            series = device.read_series_batch(requests)
            for channel, channel_values in zip(device_channels, series):
                values[channel] = channel_values

        if self.hardening is not None:
            for channel in channels:
                domain, quantity = channel
                values[channel] = self.hardening.transform(
                    values[channel],
                    per_channel_times[channel],
                    f"{domain}-{quantity}",
                )
        return values

    def sysfs_path(self, domain: str, quantity: str) -> str:
        """The sysfs file an attacker would poll for this channel."""
        require_one_of(quantity, QUANTITY_ATTRS, "quantity")
        device = self.device(domain)
        return f"{device.path}/{QUANTITY_ATTRS[quantity]}"

    def sensitive_channels(self) -> List[Tuple[str, str]]:
        """The paper's Table II channels: (domain, designator) pairs."""
        return [
            (domain, designator)
            for domain, designator in SENSITIVE_SENSOR_MAP.items()
            if designator in self._device_by_designator
        ]

    def __repr__(self) -> str:
        return (
            f"Soc({self.board.name}, {len(self.sensor_specs)} INA226 "
            f"sensors, seed={self.seed})"
        )
