"""DVFS: a cpufreq-governor model for the ARM cluster's rail.

The paper keeps "dynamic voltage and frequency scaling (DVFS) policies
... by default" — meaning the FPD rail's power depends not only on CPU
load but on the operating point the governor picks for it.  This module
models the Zynq UltraScale+ A53 cluster's OPP table and an
ondemand-style governor, so CPU-side workloads can be rendered as
rail power at the operating point the kernel would actually choose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.soc.workload import PiecewiseActivity
from repro.utils.validation import require_in_range, require_positive


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS operating performance point (OPP)."""

    frequency_hz: float
    voltage: float

    def __post_init__(self):
        require_positive(self.frequency_hz, "frequency_hz")
        require_positive(self.voltage, "voltage")


#: The ZCU102's A53 OPP table (PetaLinux default: 300/600/1200 MHz at a
#: fixed 0.85 V FPD rail — the PS does frequency-only scaling).
ZYNQMP_A53_OPPS: Tuple[OperatingPoint, ...] = (
    OperatingPoint(frequency_hz=300e6, voltage=0.85),
    OperatingPoint(frequency_hz=600e6, voltage=0.85),
    OperatingPoint(frequency_hz=1200e6, voltage=0.85),
)


class OndemandGovernor:
    """The classic ``ondemand`` cpufreq policy.

    Jump straight to the highest OPP when load crosses
    ``up_threshold``; step down one OPP at a time when load falls below
    ``down_threshold`` (the kernel's sampling-rate hysteresis).
    """

    def __init__(
        self,
        opps: Sequence[OperatingPoint] = ZYNQMP_A53_OPPS,
        up_threshold: float = 0.80,
        down_threshold: float = 0.30,
    ):
        if not opps:
            raise ValueError("need at least one operating point")
        ordered = sorted(opps, key=lambda opp: opp.frequency_hz)
        self.opps: Tuple[OperatingPoint, ...] = tuple(ordered)
        self.up_threshold = require_in_range(
            up_threshold, 0.0, 1.0, "up_threshold"
        )
        self.down_threshold = require_in_range(
            down_threshold, 0.0, up_threshold, "down_threshold"
        )
        self._level = 0

    @property
    def current(self) -> OperatingPoint:
        """The OPP currently selected."""
        return self.opps[self._level]

    def reset(self) -> None:
        """Return to the lowest OPP (boot state)."""
        self._level = 0

    def step(self, load: float) -> OperatingPoint:
        """Advance one governor sampling period with ``load`` in [0, 1]."""
        load = require_in_range(load, 0.0, 1.0, "load")
        if load >= self.up_threshold:
            self._level = len(self.opps) - 1
        elif load <= self.down_threshold and self._level > 0:
            self._level -= 1
        return self.current

    def trace(self, loads: Sequence[float]) -> List[OperatingPoint]:
        """Run a load series through the governor, one OPP per sample."""
        return [self.step(load) for load in loads]


class CpuClusterModel:
    """Renders per-period CPU load into FPD-rail power.

    Power at one OPP is ``p_idle + load * k * V^2 * f`` — the cluster's
    dynamic energy per cycle times utilization, plus its idle draw.

    Args:
        governor: the DVFS policy choosing operating points.
        k_dynamic: effective switched capacitance of the busy cluster
            (C_eff such that 1200 MHz / 0.85 V / full load ~= 1.1 W,
            matching the serving loop's preprocessing draw).
        p_idle: cluster idle power in watts (WFI + L2 + SCU).
    """

    def __init__(
        self,
        governor: OndemandGovernor = None,
        k_dynamic: float = 1.27e-9,
        p_idle: float = 0.16,
    ):
        self.governor = governor if governor is not None else OndemandGovernor()
        self.k_dynamic = require_positive(k_dynamic, "k_dynamic")
        self.p_idle = require_positive(p_idle, "p_idle")

    def power_at(self, load: float, opp: OperatingPoint) -> float:
        """Cluster power for one load level at one operating point."""
        load = require_in_range(load, 0.0, 1.0, "load")
        dynamic = (
            self.k_dynamic * opp.voltage**2 * opp.frequency_hz * load
        )
        return self.p_idle + dynamic

    def render(
        self,
        loads: Sequence[float],
        period: float = 0.01,
        start: float = 0.0,
    ) -> PiecewiseActivity:
        """Turn a load series into an FPD-rail power timeline.

        One governor decision per ``period`` (the cpufreq sampling
        rate); each period draws the power of its load at the OPP the
        governor picked for it.
        """
        require_positive(period, "period")
        loads = list(loads)
        if not loads:
            raise ValueError("need at least one load sample")
        self.governor.reset()
        segments = []
        for load in loads:
            opp = self.governor.step(load)
            segments.append((period, self.power_at(load, opp)))
        return PiecewiseActivity.from_segments(segments, start=start)

    def __repr__(self) -> str:
        return (
            f"CpuClusterModel({len(self.governor.opps)} OPPs, "
            f"idle={self.p_idle} W)"
        )
