"""SoC composition: activity timelines, power rails, sampling engine."""

from repro.soc.dvfs import (
    ZYNQMP_A53_OPPS,
    CpuClusterModel,
    OndemandGovernor,
    OperatingPoint,
)
from repro.soc.interference import (
    HEAVY_BACKGROUND,
    LIGHT_BACKGROUND,
    BackgroundLoad,
    BurstProfile,
    burst_timeline,
)
from repro.soc.rails import PowerRail
from repro.soc.thermal import ThermalModel
from repro.soc.soc import (
    DEFAULT_NOISE_PROFILES,
    QUANTITY_ATTRS,
    RailNoiseProfile,
    Soc,
)
from repro.soc.workload import (
    ActivityTimeline,
    CompositeActivity,
    ConstantActivity,
    PiecewiseActivity,
)

__all__ = [
    "HEAVY_BACKGROUND",
    "LIGHT_BACKGROUND",
    "BackgroundLoad",
    "BurstProfile",
    "burst_timeline",
    "ZYNQMP_A53_OPPS",
    "CpuClusterModel",
    "OndemandGovernor",
    "OperatingPoint",
    "ThermalModel",
    "PowerRail",
    "DEFAULT_NOISE_PROFILES",
    "QUANTITY_ATTRS",
    "RailNoiseProfile",
    "Soc",
    "ActivityTimeline",
    "CompositeActivity",
    "ConstantActivity",
    "PiecewiseActivity",
]
