"""Background interference: what else is running on a busy board.

The paper minimizes interference by pinning the victim trigger to CPU
core 0 and the sampler to core 3, and by benching an otherwise-idle
system.  Real deployments are messier: daemons wake up, DMA moves
buffers, other accelerators burst.  This module synthesizes that
background as Poisson burst processes per rail, so the robustness
benches can measure how attack quality degrades with co-activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.soc.workload import ActivityTimeline, PiecewiseActivity
from repro.utils.rng import RngLike, spawn
from repro.utils.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class BurstProfile:
    """Statistics of one rail's background bursts.

    Attributes:
        rate_hz: mean burst arrivals per second (Poisson).
        mean_duration: mean burst length in seconds (exponential).
        mean_power: mean burst amplitude in watts (exponential).
    """

    rate_hz: float
    mean_duration: float
    mean_power: float

    def __post_init__(self):
        require_non_negative(self.rate_hz, "rate_hz")
        require_positive(self.mean_duration, "mean_duration")
        require_positive(self.mean_power, "mean_power")


#: A lightly loaded interactive system.
LIGHT_BACKGROUND: Dict[str, BurstProfile] = {
    "fpd": BurstProfile(rate_hz=2.0, mean_duration=0.015, mean_power=0.35),
    "lpd": BurstProfile(rate_hz=0.5, mean_duration=0.010, mean_power=0.02),
    "ddr": BurstProfile(rate_hz=1.0, mean_duration=0.020, mean_power=0.25),
    "fpga": BurstProfile(rate_hz=0.1, mean_duration=0.050, mean_power=0.10),
}

#: A heavily co-loaded system (another tenant's accelerator, busy OS).
HEAVY_BACKGROUND: Dict[str, BurstProfile] = {
    "fpd": BurstProfile(rate_hz=15.0, mean_duration=0.030, mean_power=0.7),
    "lpd": BurstProfile(rate_hz=3.0, mean_duration=0.015, mean_power=0.03),
    "ddr": BurstProfile(rate_hz=8.0, mean_duration=0.040, mean_power=0.6),
    "fpga": BurstProfile(rate_hz=2.0, mean_duration=0.100, mean_power=0.5),
}


def burst_timeline(
    profile: BurstProfile,
    duration: float,
    seed: RngLike = None,
    start: float = 0.0,
) -> ActivityTimeline:
    """A Poisson burst process as a finite piecewise timeline."""
    require_positive(duration, "duration")
    rng = spawn(seed, "interference-bursts")
    segments: List[Tuple[float, float]] = []
    clock = 0.0
    if profile.rate_hz == 0:
        return PiecewiseActivity.from_segments(
            [(duration, 0.0)], start=start
        )
    while clock < duration:
        gap = rng.exponential(1.0 / profile.rate_hz)
        gap = min(gap, duration - clock)
        if gap > 0:
            segments.append((gap, 0.0))
            clock += gap
        if clock >= duration:
            break
        burst = min(
            rng.exponential(profile.mean_duration), duration - clock
        )
        if burst > 0:
            segments.append((burst, rng.exponential(profile.mean_power)))
            clock += burst
    if not segments:
        segments.append((duration, 0.0))
    return PiecewiseActivity.from_segments(segments, start=start)


class BackgroundLoad:
    """Attach/detach a whole background scenario to a SoC."""

    def __init__(
        self,
        profiles: Dict[str, BurstProfile] = None,
        seed: RngLike = None,
    ):
        self.profiles = dict(
            profiles if profiles is not None else LIGHT_BACKGROUND
        )
        self._seed = seed

    def attach(
        self, soc, duration: float, start: float = 0.0,
        name: str = "background",
    ) -> None:
        """Attach burst processes to every profiled rail."""
        for index, (domain, profile) in enumerate(
            sorted(self.profiles.items())
        ):
            timeline = burst_timeline(
                profile,
                duration,
                seed=(
                    self._seed
                    if self._seed is None
                    else int(self._seed) * 131 + index
                ),
                start=start,
            )
            soc.replace_workload(domain, name, timeline)

    def detach(self, soc, name: str = "background") -> None:
        """Remove the background from every profiled rail."""
        for domain in self.profiles:
            try:
                soc.detach_workload(domain, name)
            except KeyError:
                pass
