"""Power rails: regulated supplies that workloads draw from.

A :class:`PowerRail` aggregates the activity timelines attached to it
(victim circuits, accelerator phases, idle draw), and converts window-
averaged *power* into the *current* and *voltage* an INA226 on that
rail would see:

* the regulator pins the voltage to its band, leaving only load-line
  droop (plus switching ripple);
* the current follows ``I = P / V`` — since V is nearly constant, the
  rail current tracks workload power essentially one-for-one.  This is
  the physical core of AmpereBleed.

Rails also carry a broadband *ambient power noise* term: unmodeled
background activity (clock tree, adjacent logic, temperature drift)
that every conversion window integrates.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

from repro.fpga.pdn import VoltageRegulator
from repro.soc.workload import ActivityTimeline, CompositeActivity, ConstantActivity
from repro.utils.validation import require_non_negative


class PowerRail:
    """One monitored supply rail of the SoC.

    Args:
        name: rail name (e.g. ``"VCCINT"``).
        regulator: the point-of-load regulator holding this rail.
        idle_power: constant board/SoC draw on this rail in watts
            (clock trees, configuration logic, OS background on CPU
            rails) — present even with no workload attached.
        noise_power_sigma: RMS of the ambient power noise integrated by
            one conversion window, in watts.
        ripple_sigma: RMS regulator switching ripple seen by one
            conversion window, in volts.
    """

    def __init__(
        self,
        name: str,
        regulator: VoltageRegulator = None,
        idle_power: float = 0.0,
        noise_power_sigma: float = 0.0,
        ripple_sigma: float = 0.0,
    ):
        self.name = str(name)
        self.regulator = regulator if regulator is not None else VoltageRegulator()
        self.idle_power = require_non_negative(idle_power, "idle_power")
        self.noise_power_sigma = require_non_negative(
            noise_power_sigma, "noise_power_sigma"
        )
        self.ripple_sigma = require_non_negative(ripple_sigma, "ripple_sigma")
        self._workloads: Dict[str, ActivityTimeline] = {}

    def attach(self, name: str, timeline: ActivityTimeline) -> None:
        """Attach a named workload timeline to this rail."""
        if name in self._workloads:
            raise ValueError(f"workload {name!r} already attached to {self.name}")
        if not isinstance(timeline, ActivityTimeline):
            raise TypeError("timeline must be an ActivityTimeline")
        self._workloads[name] = timeline

    def detach(self, name: str) -> None:
        """Remove a previously attached workload."""
        if name not in self._workloads:
            raise KeyError(f"workload {name!r} not attached to {self.name}")
        del self._workloads[name]

    def replace(self, name: str, timeline: ActivityTimeline) -> None:
        """Attach, replacing any existing workload of the same name."""
        self._workloads.pop(name, None)
        self.attach(name, timeline)

    def clear(self) -> None:
        """Detach all workloads (idle draw remains)."""
        self._workloads.clear()

    @property
    def workload_names(self) -> Tuple[str, ...]:
        """Names of attached workloads, in attachment order."""
        return tuple(self._workloads)

    def timeline(self) -> ActivityTimeline:
        """The rail's total power timeline (idle + all workloads)."""
        components = [ConstantActivity(self.idle_power)]
        components.extend(self._workloads.values())
        if len(components) == 1:
            return components[0]
        return CompositeActivity(components)

    def mean_power(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        """True mean power over each window [t0, t1], noise-free."""
        return self.timeline().window_mean(t0, t1)

    def window_state(
        self,
        t0: np.ndarray,
        t1: np.ndarray,
        power_noise: Union[np.ndarray, float] = 0.0,
        ripple: Union[np.ndarray, float] = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rail (current, voltage) averaged over each window.

        ``power_noise`` and ``ripple`` are pre-drawn noise values (in
        watts and volts respectively); the caller owns the noise
        streams so readings can be made a pure function of the
        conversion index (see :mod:`repro.utils.hashrand`).

        The operating point solves ``V = reg(I)`` with ``I = P / V`` by
        fixed-point iteration; two rounds are ample since droop is
        three orders of magnitude below the setpoint.
        """
        power = self.mean_power(t0, t1) + np.asarray(power_noise, dtype=np.float64)
        power = np.maximum(power, 0.0)
        voltage = np.full_like(power, self.regulator.v_set)
        for _ in range(2):
            current = power / voltage
            voltage = self.regulator.voltage(current, ripple=0.0)
        voltage = self.regulator.voltage(current, ripple=ripple)
        current = power / voltage
        return current, voltage

    def __repr__(self) -> str:
        return (
            f"PowerRail({self.name!r}, idle={self.idle_power:.3g} W, "
            f"{len(self._workloads)} workloads)"
        )
