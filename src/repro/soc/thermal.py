"""First-order thermal model: die temperature and leakage feedback.

The paper's discussion points at static power ([26], Moradi CHES'14)
and at thermal effects as adjacent side channels (the authors'
ThermalScope line).  This module supplies the standard first-order
package model so experiments can include the slow drift a real board
shows under sustained load:

* die temperature follows ``T = T_ambient + R_th * P`` at steady state,
  approaching it exponentially with time constant ``tau``;
* subthreshold leakage grows roughly exponentially with temperature —
  linearized here as a per-kelvin multiplier, which is accurate over
  the tens-of-kelvin excursions an SoC sees.

The model is deliberately *not* wired into the default rails (the
paper's experiments are minutes-long and dominated by dynamic power);
the thermal-drift test exercises it standalone.
"""

from __future__ import annotations

import numpy as np

from repro.soc.workload import ActivityTimeline
from repro.utils.validation import require_non_negative, require_positive


class ThermalModel:
    """First-order (single RC) package thermal model.

    Args:
        ambient: ambient/board temperature in Celsius.
        r_thermal: junction-to-ambient thermal resistance in K/W.
        tau: thermal time constant in seconds (die+spreader, tens of
            seconds for a bare-heatsink ZCU102).
        leakage_tc: fractional leakage increase per kelvin (~1.2 %/K
            for 16 nm FinFET near 50 C).
    """

    def __init__(
        self,
        ambient: float = 45.0,
        r_thermal: float = 2.0,
        tau: float = 30.0,
        leakage_tc: float = 0.012,
    ):
        self.ambient = float(ambient)
        self.r_thermal = require_non_negative(r_thermal, "r_thermal")
        self.tau = require_positive(tau, "tau")
        self.leakage_tc = require_non_negative(leakage_tc, "leakage_tc")

    def steady_state_temperature(self, power: float) -> float:
        """Die temperature after infinite time at constant ``power``."""
        require_non_negative(power, "power")
        return self.ambient + self.r_thermal * power

    def step_response(
        self, times: np.ndarray, power: float, t_start: float = 0.0
    ) -> np.ndarray:
        """Temperature vs time for a power step at ``t_start``.

        Before the step the die sits at ambient; after it, temperature
        approaches steady state as ``1 - exp(-t/tau)``.
        """
        times = np.asarray(times, dtype=np.float64)
        rise = self.steady_state_temperature(power) - self.ambient
        elapsed = np.maximum(times - t_start, 0.0)
        return self.ambient + rise * (1.0 - np.exp(-elapsed / self.tau))

    def temperature_for_timeline(
        self,
        timeline: ActivityTimeline,
        times: np.ndarray,
        dt: float = None,
        warmup: float = None,
    ) -> np.ndarray:
        """Die temperature at each time under an arbitrary power profile.

        Discretizes the first-order ODE ``tau dT/dt = (T_ss(P) - T)``
        on a grid of step ``dt`` (default tau/50).  Integration starts
        ``warmup`` seconds (default 5 tau) before the first requested
        time, from ambient, so the die's recent history is reflected
        in the first returned sample.
        """
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        if times.size == 0:
            return times.copy()
        if np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        if dt is None:
            dt = self.tau / 50.0
        require_positive(dt, "dt")
        if warmup is None:
            warmup = 5.0 * self.tau
        require_non_negative(warmup, "warmup")
        t0 = float(times[0]) - warmup
        t_end = float(times[-1])
        n_steps = max(1, int(np.ceil((t_end - t0) / dt)))
        grid = t0 + dt * np.arange(n_steps + 1)
        power = timeline.window_mean(
            grid[:-1], np.maximum(grid[1:], grid[:-1] + 1e-12)
        )
        temperature = np.empty(grid.size)
        temperature[0] = self.ambient
        decay = np.exp(-dt / self.tau)
        target = self.ambient + self.r_thermal * power
        for index in range(n_steps):
            temperature[index + 1] = (
                target[index]
                + (temperature[index] - target[index]) * decay
            )
        return np.interp(times, grid, temperature)

    def leakage_multiplier(self, temperature: np.ndarray) -> np.ndarray:
        """Leakage-power scale factor relative to ambient."""
        temperature = np.asarray(temperature, dtype=np.float64)
        return 1.0 + self.leakage_tc * (temperature - self.ambient)

    def __repr__(self) -> str:
        return (
            f"ThermalModel(ambient={self.ambient} C, "
            f"Rth={self.r_thermal} K/W, tau={self.tau} s)"
        )
