"""Activity timelines: power demand as a function of time.

Every victim workload in the simulator (power-virus arrays, the RSA
circuit, DPU inference) is reduced to one or more *activity timelines* —
piecewise-constant power-vs-time functions on a power rail.  Sensors do
not see instantaneous power; the INA226 integrates over its conversion
window, so the primitive operation a timeline must support is the exact
*energy* accumulated between two instants.  With piecewise-constant
segments both point evaluation and window energies are exact and fully
vectorized, which is what lets the Fig 2 sweep (1.61 M sensor reads) and
the RSA attack (100 k reads) run in seconds.

Timelines may be periodic (an RSA engine encrypting in a loop) or finite
(a 5 s DPU inference run); finite timelines hold their last value after
the end and their first value before the start, which models a workload
that idles outside its active window.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.utils.validation import (
    as_1d_float_array,
    require_positive,
    require_sorted,
)


class ActivityTimeline:
    """Abstract power-vs-time profile on a single rail.

    Subclasses implement :meth:`power_at` and :meth:`energy_between`;
    everything else (window means, composition, scaling) is shared.
    """

    def power_at(self, t: np.ndarray) -> np.ndarray:
        """Instantaneous power in watts at each time in ``t`` (seconds)."""
        raise NotImplementedError

    def energy_between(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        """Exact energy in joules accumulated over each window [t0, t1]."""
        raise NotImplementedError

    def window_mean(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        """Mean power over each window [t0, t1] (t1 > t0, elementwise)."""
        t0 = np.asarray(t0, dtype=np.float64)
        t1 = np.asarray(t1, dtype=np.float64)
        widths = t1 - t0
        if np.any(widths <= 0):
            raise ValueError("window_mean requires t1 > t0 elementwise")
        return self.energy_between(t0, t1) / widths

    def scaled(self, factor: float) -> "ActivityTimeline":
        """Return this timeline with power multiplied by ``factor``."""
        return _ScaledActivity(self, factor)

    def __add__(self, other: "ActivityTimeline") -> "ActivityTimeline":
        if not isinstance(other, ActivityTimeline):
            return NotImplemented
        return CompositeActivity([self, other])


class ConstantActivity(ActivityTimeline):
    """A constant power draw (e.g. static leakage, board idle)."""

    def __init__(self, power_watts: float):
        if power_watts < 0:
            raise ValueError(f"power must be >= 0, got {power_watts}")
        self.power_watts = float(power_watts)

    def power_at(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return np.full_like(t, self.power_watts)

    def energy_between(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        t0 = np.asarray(t0, dtype=np.float64)
        t1 = np.asarray(t1, dtype=np.float64)
        return self.power_watts * (t1 - t0)

    def __repr__(self) -> str:
        return f"ConstantActivity({self.power_watts:.6g} W)"


class PiecewiseActivity(ActivityTimeline):
    """Piecewise-constant power profile, optionally periodic.

    Args:
        edges: segment boundaries, length ``n + 1``, non-decreasing.
            ``edges[0]`` is the profile start time.
        powers: per-segment power in watts, length ``n``.
        period: if given, the profile repeats with this period.  The
            period must cover the edge span (``edges[-1] - edges[0]``);
            any gap between the last edge and the period end draws the
            first segment's power again only if explicitly encoded — by
            default the gap is zero-filled, so encode idle gaps as
            explicit zero-power segments for clarity.
    """

    def __init__(
        self,
        edges: Sequence[float],
        powers: Sequence[float],
        period: float = None,
    ):
        self.edges = require_sorted(as_1d_float_array(edges, "edges"), "edges")
        self.powers = as_1d_float_array(powers, "powers")
        if self.edges.size != self.powers.size + 1:
            raise ValueError(
                f"edges ({self.edges.size}) must be one longer than "
                f"powers ({self.powers.size})"
            )
        if self.powers.size == 0:
            raise ValueError("need at least one segment")
        if np.any(self.powers < 0):
            raise ValueError("segment powers must be >= 0")
        self.start = float(self.edges[0])
        self.span = float(self.edges[-1] - self.edges[0])
        if period is not None:
            require_positive(period, "period")
            if period < self.span - 1e-12:
                raise ValueError(
                    f"period {period} shorter than profile span {self.span}"
                )
        self.period = None if period is None else float(period)
        # Cumulative energy at each edge, relative to the profile start.
        durations = np.diff(self.edges)
        self._cum_energy = np.concatenate(
            ([0.0], np.cumsum(durations * self.powers))
        )
        self._cycle_energy = float(self._cum_energy[-1])

    @classmethod
    def from_segments(
        cls,
        segments: Iterable[Tuple[float, float]],
        start: float = 0.0,
        period: float = None,
    ) -> "PiecewiseActivity":
        """Build from ``(duration_seconds, power_watts)`` pairs."""
        durations: List[float] = []
        powers: List[float] = []
        for duration, power in segments:
            if duration <= 0:
                raise ValueError(f"segment duration must be > 0, got {duration}")
            durations.append(float(duration))
            powers.append(float(power))
        edges = start + np.concatenate(([0.0], np.cumsum(durations)))
        return cls(edges, powers, period=period)

    @property
    def mean_power(self) -> float:
        """Mean power over one cycle (periodic) or the profile span."""
        denominator = self.period if self.period is not None else self.span
        return self._cycle_energy / denominator

    def _fold(self, t: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map absolute times to (whole cycles, offset into the pattern)."""
        rel = t - self.start
        if self.period is None:
            return np.zeros_like(rel), rel
        cycles = np.floor(rel / self.period)
        return cycles, rel - cycles * self.period

    def power_at(self, t: np.ndarray) -> np.ndarray:
        t = np.atleast_1d(np.asarray(t, dtype=np.float64))
        _, offset = self._fold(t)
        if self.period is None:
            # Hold first/last segment value outside the span.
            offset = np.clip(offset, 0.0, np.nextafter(self.span, 0.0))
        rel_edges = self.edges - self.start
        index = np.searchsorted(rel_edges, offset, side="right") - 1
        index = np.clip(index, 0, self.powers.size - 1)
        result = self.powers[index]
        if self.period is not None:
            # Zero-fill any gap between the pattern end and the period.
            result = np.where(offset >= self.span, 0.0, result)
        return result

    def _energy_from_start(self, t: np.ndarray) -> np.ndarray:
        """Energy accumulated from the profile start to each time."""
        cycles, offset = self._fold(t)
        if self.period is None:
            # Before the start: extrapolate with the first segment's
            # power; after the end: extrapolate with the last segment's.
            below = offset < 0
            above = offset > self.span
            clipped = np.clip(offset, 0.0, self.span)
            rel_edges = self.edges - self.start
            index = np.searchsorted(rel_edges, clipped, side="right") - 1
            index = np.clip(index, 0, self.powers.size - 1)
            energy = self._cum_energy[index] + self.powers[index] * (
                clipped - rel_edges[index]
            )
            energy = energy + np.where(below, offset * self.powers[0], 0.0)
            energy = energy + np.where(
                above, (offset - self.span) * self.powers[-1], 0.0
            )
            return energy
        offset = np.clip(offset, 0.0, self.period)
        in_pattern = np.minimum(offset, self.span)
        rel_edges = self.edges - self.start
        index = np.searchsorted(rel_edges, in_pattern, side="right") - 1
        index = np.clip(index, 0, self.powers.size - 1)
        partial = self._cum_energy[index] + self.powers[index] * (
            in_pattern - rel_edges[index]
        )
        # Past the pattern span the gap contributes no energy.
        partial = np.where(offset >= self.span, self._cycle_energy, partial)
        return cycles * self._cycle_energy + partial

    def energy_between(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        t0 = np.atleast_1d(np.asarray(t0, dtype=np.float64))
        t1 = np.atleast_1d(np.asarray(t1, dtype=np.float64))
        return self._energy_from_start(t1) - self._energy_from_start(t0)

    def __repr__(self) -> str:
        kind = f"period={self.period:.6g}s" if self.period else "finite"
        return (
            f"PiecewiseActivity({self.powers.size} segments, "
            f"span={self.span:.6g}s, {kind})"
        )


class CompositeActivity(ActivityTimeline):
    """Sum of timelines (e.g. static leakage + several active circuits)."""

    def __init__(self, components: Sequence[ActivityTimeline]):
        flattened: List[ActivityTimeline] = []
        for component in components:
            if isinstance(component, CompositeActivity):
                flattened.extend(component.components)
            else:
                flattened.append(component)
        if not flattened:
            raise ValueError("CompositeActivity needs at least one component")
        self.components: Tuple[ActivityTimeline, ...] = tuple(flattened)

    def power_at(self, t: np.ndarray) -> np.ndarray:
        t = np.atleast_1d(np.asarray(t, dtype=np.float64))
        total = np.zeros_like(t)
        for component in self.components:
            total = total + component.power_at(t)
        return total

    def energy_between(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        t0 = np.atleast_1d(np.asarray(t0, dtype=np.float64))
        t1 = np.atleast_1d(np.asarray(t1, dtype=np.float64))
        total = np.zeros_like(t0)
        for component in self.components:
            total = total + component.energy_between(t0, t1)
        return total

    def __repr__(self) -> str:
        return f"CompositeActivity({len(self.components)} components)"


class _ScaledActivity(ActivityTimeline):
    """A timeline multiplied by a non-negative scalar."""

    def __init__(self, base: ActivityTimeline, factor: float):
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        self.base = base
        self.factor = float(factor)

    def power_at(self, t: np.ndarray) -> np.ndarray:
        return self.base.power_at(t) * self.factor

    def energy_between(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        return self.base.energy_between(t0, t1) * self.factor

    def __repr__(self) -> str:
        return f"{self.base!r} * {self.factor:.6g}"
