"""The AmpereBleed attack library: sampling, characterization, attacks."""

from repro.core.characterize import (
    CHANNEL_LSBS,
    ChannelSweep,
    CharacterizationResult,
    characterize,
)
from repro.core.countermeasures import (
    ROOT_ONLY,
    SensorHardening,
    coarsened,
    dithered,
    rate_limited,
)
from repro.core.covert_channel import (
    ChannelReport,
    CovertChannel,
    PowerCovertReceiver,
    PowerCovertSender,
    decode_frame,
)
from repro.core.calibration import (
    SensorClockEstimate,
    calibrate_channel,
    estimate_sensor_clock,
)
from repro.core.campaign import AttackCampaign, ReconReport
from repro.core.detector import Episode, OnsetDetector
from repro.core.io import (
    ArchiveError,
    TraceArchiveReader,
    TraceArchiveWriter,
    load_traceset,
    open_archive,
    save_traceset,
)
from repro.core.features import resample_values, standardize, summary_features
from repro.core.fingerprint import (
    FAST_CONFIG,
    TABLE3_CHANNELS,
    TABLE3_DURATIONS,
    DnnFingerprinter,
    FingerprintAnalyzer,
    FingerprintConfig,
)
from repro.core.rsa_attack import (
    KeyProfile,
    RsaHammingWeightAttack,
    WeightSweepResult,
    sweep_from_traces,
)
from repro.core.sampler import (
    ChannelDeadError,
    ChannelOutageError,
    HwmonSampler,
    StreamInterrupted,
    TraceStream,
)
from repro.core.traces import Trace, TraceQuality, TraceSet

__all__ = [
    "CHANNEL_LSBS",
    "ROOT_ONLY",
    "SensorHardening",
    "coarsened",
    "dithered",
    "rate_limited",
    "ChannelReport",
    "CovertChannel",
    "PowerCovertReceiver",
    "PowerCovertSender",
    "decode_frame",
    "SensorClockEstimate",
    "calibrate_channel",
    "estimate_sensor_clock",
    "AttackCampaign",
    "ReconReport",
    "Episode",
    "OnsetDetector",
    "ArchiveError",
    "TraceArchiveReader",
    "TraceArchiveWriter",
    "load_traceset",
    "open_archive",
    "save_traceset",
    "ChannelSweep",
    "CharacterizationResult",
    "characterize",
    "resample_values",
    "standardize",
    "summary_features",
    "FAST_CONFIG",
    "TABLE3_CHANNELS",
    "TABLE3_DURATIONS",
    "DnnFingerprinter",
    "FingerprintAnalyzer",
    "FingerprintConfig",
    "KeyProfile",
    "RsaHammingWeightAttack",
    "WeightSweepResult",
    "sweep_from_traces",
    "ChannelDeadError",
    "ChannelOutageError",
    "HwmonSampler",
    "StreamInterrupted",
    "TraceStream",
    "Trace",
    "TraceQuality",
    "TraceSet",
]
