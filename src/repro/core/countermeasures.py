"""Sensor-hardening countermeasures against AmpereBleed.

The paper's discussion proposes restricting INA226 access to
privileged users, and notes the cost: benign monitoring breaks and
legacy devices stay exposed.  This module implements that mitigation
plus the two softer alternatives a vendor would consider, so the
defense bench can quantify each one's security/utility trade-off:

* **root-only access** — unprivileged reads of the sensitive files
  fail outright (the paper's proposal);
* **resolution coarsening** — readings are quantized to a coarser LSB
  before export, the same mechanism that already (accidentally)
  protects the 25 mW power channel;
* **noise injection** — the driver adds random jitter to each exported
  reading, trading monitoring fidelity for side-channel margin;
* **rate limiting** — readings refresh on a slower grid than the
  hardware supports, shrinking how many independent observations an
  attacker can harvest per second.

A :class:`SensorHardening` policy is attached to a
:class:`repro.soc.Soc` at construction; every hwmon read flows through
it, so the attack pipelines run unmodified against hardened platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sensors.hwmon import HwmonPermissionError
from repro.utils.hashrand import hashed_normal
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class SensorHardening:
    """A hardening policy applied to every exported sensor reading.

    Attributes:
        restrict_to_root: deny unprivileged reads entirely (the paper's
            mitigation).
        quantize_lsb: if set, round exported readings to this many
            output units (e.g. 32 -> 32 mA current steps).
        noise_sigma: if set, add zero-mean Gaussian dither of this many
            output units to each *refresh* (not each poll — repeated
            polls of one cached value stay consistent).
        min_interval: if set, serve readings on this refresh grid (in
            seconds) even when the hardware updates faster.
        seed: keys the dither stream.
    """

    restrict_to_root: bool = False
    quantize_lsb: Optional[float] = None
    noise_sigma: Optional[float] = None
    min_interval: Optional[float] = None
    seed: Optional[int] = 0

    def __post_init__(self):
        if self.quantize_lsb is not None and self.quantize_lsb <= 0:
            raise ValueError("quantize_lsb must be > 0")
        if self.noise_sigma is not None and self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        if self.min_interval is not None and self.min_interval <= 0:
            raise ValueError("min_interval must be > 0")

    def check_access(self, privileged: bool) -> None:
        """Enforce the access policy (raises for denied reads)."""
        if self.restrict_to_root and not privileged:
            raise HwmonPermissionError(
                "sensor access restricted to root by hardening policy"
            )

    def effective_times(self, times: np.ndarray) -> np.ndarray:
        """Fold poll times onto the rate-limited refresh grid."""
        if self.min_interval is None:
            return times
        times = np.asarray(times, dtype=np.float64)
        return np.floor(times / self.min_interval) * self.min_interval

    def transform(
        self, values: np.ndarray, times: np.ndarray, channel: str
    ) -> np.ndarray:
        """Apply dither and quantization to exported readings.

        Dither is a pure function of the (rate-limited) refresh slot,
        so an attacker cannot average it away by polling faster —
        matching how a driver-level mitigation would behave.
        """
        values = np.asarray(values, dtype=np.float64)
        if self.noise_sigma:
            key = derive_seed(self.seed, f"hardening-{channel}")
            grid = self.min_interval if self.min_interval else 1e-3
            slots = np.floor(
                np.asarray(times, dtype=np.float64) / grid
            ).astype(np.int64).astype(np.uint64)
            values = values + self.noise_sigma * hashed_normal(key, slots)
        if self.quantize_lsb:
            values = np.round(values / self.quantize_lsb) * self.quantize_lsb
        return np.rint(values).astype(np.int64)


#: The paper's proposed mitigation, ready to attach to a Soc.
ROOT_ONLY = SensorHardening(restrict_to_root=True)


def coarsened(lsb: float) -> SensorHardening:
    """Resolution-coarsening policy (e.g. ``coarsened(32)`` = 32 mA)."""
    return SensorHardening(quantize_lsb=lsb)


def dithered(sigma: float, seed: int = 0) -> SensorHardening:
    """Noise-injection policy with RMS ``sigma`` output units."""
    return SensorHardening(noise_sigma=sigma, seed=seed)


def rate_limited(interval_seconds: float) -> SensorHardening:
    """Refresh-throttling policy."""
    return SensorHardening(min_interval=interval_seconds)
