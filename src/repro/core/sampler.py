"""Unprivileged hwmon sampling: the attacker's measurement loop.

The attack process is an ordinary user-space loop::

    fd = open("/sys/class/hwmon/hwmon3/curr1_input")
    while recording:
        readings.append(int(pread(fd)))
        clock_nanosleep(...)

Two real-world effects shape the resulting trace and are modeled here:

* the *poll clock* has jitter (nanosleep wakeups are not exact), so
  sample timestamps wander around the nominal grid;
* the sensor refreshes only every ``update_interval`` (35 ms default),
  so polling faster returns runs of repeated values — the paper's RSA
  attack polls at 1 kHz against a 35 ms sensor for exactly this
  oversampled regime.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.core.traces import Trace
from repro.soc.soc import Soc
from repro.utils.rng import RngLike, spawn
from repro.utils.validation import (
    require_int_in_range,
    require_non_negative,
    require_positive,
)


class TraceStream:
    """A bounded-memory polling session, yielded as :class:`Trace` chunks.

    Iterating produces consecutive chunks of at most ``chunk_samples``
    polls each; concatenating every chunk's times/values is
    **bit-identical** to one :meth:`HwmonSampler.collect` call over the
    whole session.  That equality holds because

    * poll jitter is drawn chunk-by-chunk from the *same* generator a
      one-shot collect would use (numpy's normal stream is invariant
      under draw batching), and
    * the monotonic-clock clamp carries its running maximum across
      chunk boundaries.

    Only one chunk is resident at a time, so a stakeout loop or a
    long recording session uses memory proportional to the chunk size,
    not the session length; :attr:`max_resident_samples` records the
    high-water mark for tests and capacity planning.
    """

    def __init__(
        self,
        sampler: "HwmonSampler",
        domain: str,
        quantity: str,
        start: float,
        n_samples: int,
        poll_hz: float,
        chunk_samples: int,
        label: Optional[str] = None,
    ):
        self.sampler = sampler
        self.domain = domain
        self.quantity = quantity
        # Keep the caller's start value verbatim: the jitter stream is
        # keyed by its repr, exactly as poll_times() keys a one-shot
        # collect for the same session.
        self.start = start
        self.n_samples = require_int_in_range(
            n_samples, 1, 100_000_000, "n_samples"
        )
        self.poll_hz = require_positive(poll_hz, "poll_hz")
        self.chunk_samples = require_int_in_range(
            chunk_samples, 1, 100_000_000, "chunk_samples"
        )
        self.label = label
        self._emitted = 0
        self._running_max = -np.inf
        self._rng = (
            spawn(
                sampler._seed,
                f"sampler-{domain}-{quantity}-{start!r}",
            )
            if sampler.poll_jitter > 0.0
            else None
        )
        #: Largest chunk materialized so far (samples) — the stream's
        #: peak resident trace buffer.
        self.max_resident_samples = 0

    @property
    def samples_remaining(self) -> int:
        """Polls not yet emitted."""
        return self.n_samples - self._emitted

    def __iter__(self) -> Iterator[Trace]:
        return self

    def __next__(self) -> Trace:
        if self._emitted >= self.n_samples:
            raise StopIteration
        count = min(self.chunk_samples, self.n_samples - self._emitted)
        index = np.arange(self._emitted, self._emitted + count)
        times = self.start + index / self.poll_hz
        if self._rng is not None:
            times = times + (
                self.sampler.poll_jitter * self._rng.standard_normal(count)
            )
            # Monotonic clamp with the running max carried across
            # chunks — exactly np.maximum.accumulate over the session.
            times = np.maximum.accumulate(times)
            times = np.maximum(times, self._running_max)
            self._running_max = float(times[-1])
        values = self.sampler.soc.sample(self.domain, self.quantity, times)
        self._emitted += count
        self.max_resident_samples = max(self.max_resident_samples, count)
        return Trace(
            times=times,
            values=values,
            domain=self.domain,
            quantity=self.quantity,
            label=self.label,
        )

    def __repr__(self) -> str:
        return (
            f"TraceStream({self.domain}/{self.quantity}, "
            f"{self._emitted}/{self.n_samples} samples emitted, "
            f"chunk={self.chunk_samples})"
        )


class HwmonSampler:
    """Polls a SoC's hwmon channels and records traces.

    Args:
        soc: the simulated SoC under attack.
        poll_jitter: RMS timing jitter of the polling loop in seconds
            (nanosleep + scheduler wakeup noise on a Cortex-A53).
        seed: keys the sampler's jitter stream.
    """

    def __init__(
        self,
        soc: Soc,
        poll_jitter: float = 120e-6,
        seed: RngLike = None,
    ):
        if not isinstance(soc, Soc):
            raise TypeError("soc must be a repro.soc.Soc")
        self.soc = soc
        self.poll_jitter = require_non_negative(poll_jitter, "poll_jitter")
        self._seed = seed

    def poll_times(
        self,
        start: float,
        n_samples: int,
        poll_hz: float,
        stream: str = "poll",
    ) -> np.ndarray:
        """Jittered poll timestamps for one recording session."""
        n_samples = require_int_in_range(
            n_samples, 1, 100_000_000, "n_samples"
        )
        require_positive(poll_hz, "poll_hz")
        grid = start + np.arange(n_samples) / poll_hz
        if self.poll_jitter == 0.0:
            return grid
        rng = spawn(self._seed, f"sampler-{stream}-{start!r}")
        jitter = self.poll_jitter * rng.standard_normal(n_samples)
        times = grid + jitter
        # The loop never polls backwards in time.
        return np.maximum.accumulate(times)

    def default_poll_hz(self, domain: str) -> float:
        """One poll per sensor update — the paper's default cadence."""
        return 1.0 / self.soc.device(domain).update_period

    def collect(
        self,
        domain: str,
        quantity: str,
        start: float = 0.0,
        duration: Optional[float] = None,
        n_samples: Optional[int] = None,
        poll_hz: Optional[float] = None,
        label: Optional[str] = None,
    ) -> Trace:
        """Record one trace from an hwmon channel.

        Specify the session length either as ``duration`` (seconds) or
        ``n_samples``; ``poll_hz`` defaults to the sensor's update rate
        (polling faster only repeats cached registers).
        """
        if poll_hz is None:
            poll_hz = self.default_poll_hz(domain)
        if (duration is None) == (n_samples is None):
            raise ValueError("specify exactly one of duration or n_samples")
        if n_samples is None:
            require_positive(duration, "duration")
            n_samples = max(1, int(round(duration * poll_hz)))
        times = self.poll_times(
            start, n_samples, poll_hz, stream=f"{domain}-{quantity}"
        )
        values = self.soc.sample(domain, quantity, times)
        return Trace(
            times=times,
            values=values,
            domain=domain,
            quantity=quantity,
            label=label,
        )

    def stream(
        self,
        domain: str,
        quantity: str,
        start: float = 0.0,
        duration: Optional[float] = None,
        n_samples: Optional[int] = None,
        poll_hz: Optional[float] = None,
        chunk_samples: Optional[int] = None,
        chunk_duration: Optional[float] = None,
        label: Optional[str] = None,
    ) -> TraceStream:
        """Open a chunked recording session on one hwmon channel.

        Like :meth:`collect`, but the session is consumed as an
        iterator of bounded :class:`Trace` chunks instead of one
        resident array — the shape of a real long-running capture
        loop that flushes to disk as it polls.  Concatenating the
        chunks reproduces the one-shot :meth:`collect` trace
        bit-exactly.

        The chunk size is given as ``chunk_samples`` or
        ``chunk_duration`` (seconds); unspecified, chunks cover one
        second of polling.
        """
        if poll_hz is None:
            poll_hz = self.default_poll_hz(domain)
        if (duration is None) == (n_samples is None):
            raise ValueError("specify exactly one of duration or n_samples")
        if n_samples is None:
            require_positive(duration, "duration")
            n_samples = max(1, int(round(duration * poll_hz)))
        if chunk_samples is not None and chunk_duration is not None:
            raise ValueError(
                "specify at most one of chunk_samples or chunk_duration"
            )
        if chunk_samples is None:
            window = 1.0 if chunk_duration is None else chunk_duration
            require_positive(window, "chunk_duration")
            chunk_samples = max(1, int(round(window * poll_hz)))
        return TraceStream(
            self,
            domain,
            quantity,
            start=start,
            n_samples=n_samples,
            poll_hz=poll_hz,
            chunk_samples=chunk_samples,
            label=label,
        )

    def collect_many(
        self,
        channels,
        start: float = 0.0,
        duration: Optional[float] = None,
        n_samples: Optional[int] = None,
        label: Optional[str] = None,
    ) -> dict:
        """Record several channels over one window in a single pass.

        Each channel keeps its own jittered poll clock (exactly the
        timestamps :meth:`collect` would draw), but the sensor
        conversions are batched through :meth:`repro.soc.Soc.
        sample_many`: channels sharing a physical device are served
        from one conversion pass over their combined latch windows.
        The returned traces are bit-identical to one :meth:`collect`
        call per channel.
        """
        channels = [tuple(channel) for channel in channels]
        if not channels:
            raise ValueError("need at least one channel")
        if (duration is None) == (n_samples is None):
            raise ValueError("specify exactly one of duration or n_samples")
        times_by_channel = {}
        for domain, quantity in channels:
            poll_hz = self.default_poll_hz(domain)
            if n_samples is None:
                require_positive(duration, "duration")
                channel_samples = max(1, int(round(duration * poll_hz)))
            else:
                channel_samples = n_samples
            times_by_channel[(domain, quantity)] = self.poll_times(
                start,
                channel_samples,
                poll_hz,
                stream=f"{domain}-{quantity}",
            )
        values = self.soc.sample_many(channels, times_by_channel)
        return {
            (domain, quantity): Trace(
                times=times_by_channel[(domain, quantity)],
                values=values[(domain, quantity)],
                domain=domain,
                quantity=quantity,
                label=label,
            )
            for domain, quantity in channels
        }

    def collect_concurrent(
        self,
        channels,
        start: float = 0.0,
        duration: float = None,
        label: Optional[str] = None,
    ) -> dict:
        """Record several channels over the same wall-clock window.

        ``channels`` is an iterable of ``(domain, quantity)`` pairs; on
        the real board these are concurrent polling threads, and here
        each channel's own device/phase/noise applies, so the traces
        are exactly what simultaneous threads would capture.  Served by
        the batched :meth:`collect_many` path (identical traces, fewer
        conversion passes).
        """
        return self.collect_many(
            channels, start=start, duration=duration, label=label
        )

    def __repr__(self) -> str:
        return f"HwmonSampler({self.soc!r}, jitter={self.poll_jitter:.3g}s)"
