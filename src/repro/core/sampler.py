"""Unprivileged hwmon sampling: the attacker's measurement loop.

The attack process is an ordinary user-space loop::

    fd = open("/sys/class/hwmon/hwmon3/curr1_input")
    while recording:
        readings.append(int(pread(fd)))
        clock_nanosleep(...)

Two real-world effects shape the resulting trace and are modeled here:

* the *poll clock* has jitter (nanosleep wakeups are not exact), so
  sample timestamps wander around the nominal grid;
* the sensor refreshes only every ``update_interval`` (35 ms default),
  so polling faster returns runs of repeated values — the paper's RSA
  attack polls at 1 kHz against a 35 ms sensor for exactly this
  oversampled regime.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from repro.core.traces import Trace, TraceQuality
from repro.faults import RetryPolicy, SensorHealth
from repro.sensors.hwmon import HwmonError
from repro.soc.soc import Soc
from repro.utils.rng import RngLike, spawn
from repro.utils.validation import (
    require_int_in_range,
    require_non_negative,
    require_positive,
)


class ChannelOutageError(RuntimeError):
    """A resilient read lost every sample despite the retry budget."""

    def __init__(
        self, domain: str, quantity: str, message: str, retries: int = 0
    ):
        super().__init__(f"{domain}/{quantity}: {message}")
        self.domain = domain
        self.quantity = quantity
        self.retries = retries


class ChannelDeadError(ChannelOutageError):
    """The channel's health machine has pinned it ``dead``."""


class StreamInterrupted(RuntimeError):
    """A :class:`TraceStream`'s device failed mid-session.

    The stream flushes the last good partial chunk first (when any
    leading samples survived), then raises this on the following
    ``next()``; ``emitted`` counts every sample delivered before the
    failure, including that partial chunk.
    """

    def __init__(self, domain: str, quantity: str, emitted: int, message: str):
        super().__init__(
            f"{domain}/{quantity} interrupted after {emitted} samples: "
            f"{message}"
        )
        self.domain = domain
        self.quantity = quantity
        self.emitted = emitted
        self.message = message

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # string) into ``__init__``, which takes four fields — so a
        # stream failure crossing a process boundary (pool worker →
        # parent) must rebuild from the fields instead.
        return (
            type(self),
            (self.domain, self.quantity, self.emitted, self.message),
        )


class TraceStream:
    """A bounded-memory polling session, yielded as :class:`Trace` chunks.

    Iterating produces consecutive chunks of at most ``chunk_samples``
    polls each; concatenating every chunk's times/values is
    **bit-identical** to one :meth:`HwmonSampler.collect` call over the
    whole session.  That equality holds because

    * poll jitter is drawn chunk-by-chunk from the *same* generator a
      one-shot collect would use (numpy's normal stream is invariant
      under draw batching), and
    * the monotonic-clock clamp carries its running maximum across
      chunk boundaries.

    Only one chunk is resident at a time, so a stakeout loop or a
    long recording session uses memory proportional to the chunk size,
    not the session length; :attr:`max_resident_samples` records the
    high-water mark for tests and capacity planning.
    """

    def __init__(
        self,
        sampler: "HwmonSampler",
        domain: str,
        quantity: str,
        start: float,
        n_samples: int,
        poll_hz: float,
        chunk_samples: int,
        label: Optional[str] = None,
    ):
        self.sampler = sampler
        self.domain = domain
        self.quantity = quantity
        # Keep the caller's start value verbatim: the jitter stream is
        # keyed by its repr, exactly as poll_times() keys a one-shot
        # collect for the same session.
        self.start = start
        self.n_samples = require_int_in_range(
            n_samples, 1, 100_000_000, "n_samples"
        )
        self.poll_hz = require_positive(poll_hz, "poll_hz")
        self.chunk_samples = require_int_in_range(
            chunk_samples, 1, 100_000_000, "chunk_samples"
        )
        self.label = label
        self._emitted = 0
        self._pending_error: Optional[StreamInterrupted] = None
        self._terminated = False
        self._running_max = -np.inf
        self._rng = (
            spawn(
                sampler._seed,
                f"sampler-{domain}-{quantity}-{start!r}",
            )
            if sampler.poll_jitter > 0.0
            else None
        )
        #: Largest chunk materialized so far (samples) — the stream's
        #: peak resident trace buffer.
        self.max_resident_samples = 0

    @property
    def samples_remaining(self) -> int:
        """Polls not yet emitted."""
        return self.n_samples - self._emitted

    def skip_samples(self, count: int) -> None:
        """Advance past ``count`` already-recorded samples without polling.

        The resume path of a monitor session: samples recovered from an
        archive checkpoint must not be re-polled, but the stream's
        deterministic state — the jitter generator's position and the
        monotonic clamp's running maximum — must advance exactly as if
        they had been, so every subsequent chunk is byte-identical to
        an uninterrupted session.  Replays the per-chunk time
        computation (the RNG is consumed in the same chunk-sized draws)
        and discards the result instead of sampling the SoC.
        """
        count = require_int_in_range(
            count, 0, self.samples_remaining, "count"
        )
        remaining = count
        while remaining > 0:
            step = min(self.chunk_samples, remaining)
            index = np.arange(self._emitted, self._emitted + step)
            times = self.start + index / self.poll_hz
            if self._rng is not None:
                times = times + (
                    self.sampler.poll_jitter
                    * self._rng.standard_normal(step)
                )
                times = np.maximum.accumulate(times)
                times = np.maximum(times, self._running_max)
                self._running_max = float(times[-1])
            self._emitted += step
            remaining -= step

    def __iter__(self) -> Iterator[Trace]:
        return self

    def __next__(self) -> Trace:
        if self._pending_error is not None:
            error, self._pending_error = self._pending_error, None
            self._terminated = True
            raise error
        if self._terminated or self._emitted >= self.n_samples:
            raise StopIteration
        count = min(self.chunk_samples, self.n_samples - self._emitted)
        index = np.arange(self._emitted, self._emitted + count)
        times = self.start + index / self.poll_hz
        if self._rng is not None:
            times = times + (
                self.sampler.poll_jitter * self._rng.standard_normal(count)
            )
            # Monotonic clamp with the running max carried across
            # chunks — exactly np.maximum.accumulate over the session.
            times = np.maximum.accumulate(times)
            times = np.maximum(times, self._running_max)
            self._running_max = float(times[-1])
        quality: Optional[TraceQuality] = None
        if self.sampler._faults_active(self.domain):
            try:
                values, quality = self.sampler._sample_resilient(
                    self.domain, self.quantity, times
                )
            except ChannelDeadError as exc:
                self._terminated = True
                error = StreamInterrupted(
                    self.domain, self.quantity, self._emitted, str(exc)
                )
                raise error from exc
            except ChannelOutageError as exc:
                return self._flush_partial(times, exc, faulted=True)
        else:
            try:
                values = self.sampler.soc.sample(
                    self.domain, self.quantity, times
                )
            except HwmonError as exc:
                return self._flush_partial(times, exc, faulted=False)
        self._emitted += count
        self.max_resident_samples = max(self.max_resident_samples, count)
        return Trace(
            times=times,
            values=values,
            domain=self.domain,
            quantity=self.quantity,
            label=self.label,
            quality=quality,
        )

    def _flush_partial(
        self, times: np.ndarray, cause: Exception, faulted: bool
    ) -> Trace:
        """Emit the good leading samples of a chunk whose read failed.

        The failing chunk is re-polled through the masked fault path
        (pointwise identical values) to find the longest good prefix; a
        :class:`StreamInterrupted` carrying the failure is queued for
        the following ``next()``.  Raises it immediately when no
        samples at all survived.
        """
        values, transient, gone = self.sampler.soc.sample_faulted(
            self.domain, self.quantity, times
        )
        bad = transient | gone
        limit = self.sampler.retry_policy.plausible_limit
        bad |= np.abs(np.asarray(values).astype(np.int64)) > limit
        prefix = int(np.argmax(bad)) if bad.any() else int(times.size)
        error = StreamInterrupted(
            self.domain, self.quantity, self._emitted + prefix, str(cause)
        )
        error.__cause__ = cause
        if prefix == 0:
            self._terminated = True
            raise error
        quality = None
        if faulted:
            # Keep the retry provenance from the failed resilient read:
            # a downstream consumer judging verdict trustworthiness
            # must see that this partial chunk burned its retry budget,
            # not just that the channel was unhealthy.
            quality = TraceQuality(
                retries=int(getattr(cause, "retries", 0)),
                health=self.sampler.channel_health(self.domain),
            )
        self._pending_error = error
        self._emitted += prefix
        self.max_resident_samples = max(self.max_resident_samples, prefix)
        return Trace(
            times=times[:prefix],
            values=values[:prefix],
            domain=self.domain,
            quantity=self.quantity,
            label=self.label,
            quality=quality,
        )

    def __repr__(self) -> str:
        return (
            f"TraceStream({self.domain}/{self.quantity}, "
            f"{self._emitted}/{self.n_samples} samples emitted, "
            f"chunk={self.chunk_samples})"
        )


class HwmonSampler:
    """Polls a SoC's hwmon channels and records traces.

    Args:
        soc: the simulated SoC under attack.
        poll_jitter: RMS timing jitter of the polling loop in seconds
            (nanosleep + scheduler wakeup noise on a Cortex-A53).
        seed: keys the sampler's jitter stream.
        retry_policy: how the resilient read path reacts to injected
            faults (bounded retries, deterministic backoff,
            plausibility gate, gap interpolation).  Only consulted
            when a device has a live :class:`repro.faults.FaultPlan`
            armed; the fault-free fast path is untouched.
    """

    def __init__(
        self,
        soc: Soc,
        poll_jitter: float = 120e-6,
        seed: RngLike = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if not isinstance(soc, Soc):
            raise TypeError("soc must be a repro.soc.Soc")
        self.soc = soc
        self.poll_jitter = require_non_negative(poll_jitter, "poll_jitter")
        self._seed = seed
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self._health: Dict[str, SensorHealth] = {}

    # --------------------------------------------------- resilient plumbing

    def _faults_active(self, domain: str) -> bool:
        """True when this domain's device has a live fault plan armed."""
        return bool(getattr(self.soc.device(domain), "faults_active", False))

    def _health_for(self, domain: str) -> SensorHealth:
        health = self._health.get(domain)
        if health is None:
            health = SensorHealth(self.retry_policy.dead_after_outages)
            self._health[domain] = health
        return health

    def channel_health(self, domain: str) -> str:
        """Current health state of one domain's sensor."""
        return self._health_for(domain).state

    def force_dead(self, domain: str) -> None:
        """Pin one domain's sensor dead (a confirmed-unbound device)."""
        self._health_for(domain).force_dead()

    def reset_health(self) -> None:
        """Forget all channel health history."""
        for health in self._health.values():
            health.reset()

    def _sample_resilient(
        self,
        domain: str,
        quantity: str,
        times: np.ndarray,
        record_health: bool = True,
    ):
        """One fault-aware read: retry, plausibility-gate, interpolate.

        Returns ``(values, TraceQuality)``.  Bad samples (transient
        errors, hotplug windows, torn readings caught by the
        plausibility gate) are re-read at deterministically backed-off
        simulated times — the fault schedule is a pure function of the
        poll time, so a shifted retry draws a fresh outcome and the
        whole recovery is identical across runs, chunk sizes, and
        worker counts.  Polls still bad after the retry budget become
        gaps, linearly interpolated from the chunk's good samples when
        the policy allows (interpolation uses within-chunk neighbors,
        so recovered values are chunking-dependent; schedules and
        per-poll outcomes are not).

        Raises :class:`ChannelDeadError` when the channel's health is
        pinned dead, :class:`ChannelOutageError` when a read loses
        every sample.
        """
        policy = self.retry_policy
        health = self._health_for(domain)
        if health.is_dead:
            raise ChannelDeadError(
                domain, quantity, "channel health is pinned dead"
            )
        times = np.asarray(times, dtype=np.float64)
        total = int(times.size)
        values, transient, gone = self.soc.sample_faulted(
            domain, quantity, times
        )
        values = np.array(values)
        torn = np.abs(values.astype(np.int64)) > policy.plausible_limit
        bad = transient | gone | torn
        faults_seen = int(bad.sum())
        retries = 0
        offset = 0.0
        for attempt in range(policy.max_retries):
            if not bad.any():
                break
            offset += policy.backoff(attempt)
            idx = np.flatnonzero(bad)
            retry_values, retry_transient, retry_gone = (
                self.soc.sample_faulted(domain, quantity, times[idx] + offset)
            )
            retry_values = np.asarray(retry_values)
            retry_torn = (
                np.abs(retry_values.astype(np.int64)) > policy.plausible_limit
            )
            retry_bad = retry_transient | retry_gone | retry_torn
            recovered = idx[~retry_bad]
            values[recovered] = retry_values[~retry_bad]
            bad[recovered] = False
            retries += int(idx.size)
        gaps = int(bad.sum())
        good = ~bad
        if gaps >= total:
            if record_health:
                health.note_read(faults_seen, gaps, total)
                if health.is_dead:
                    raise ChannelDeadError(
                        domain,
                        quantity,
                        f"dead after repeated outages "
                        f"({retries} retries exhausted)",
                        retries=retries,
                    )
            raise ChannelOutageError(
                domain,
                quantity,
                f"all {total} samples lost after {retries} retries",
                retries=retries,
            )
        interpolated = 0
        if gaps:
            if policy.interpolate_gaps:
                filled = np.interp(
                    times[bad], times[good], values[good].astype(np.float64)
                )
                values[bad] = np.rint(filled).astype(values.dtype)
                interpolated = gaps
            else:
                # Sample-and-hold: repeat the nearest preceding good
                # poll (the first good poll for leading gaps).
                good_idx = np.flatnonzero(good)
                pos = np.searchsorted(
                    good_idx, np.flatnonzero(bad), side="right"
                ) - 1
                pos = np.clip(pos, 0, good_idx.size - 1)
                values[bad] = values[good_idx[pos]]
        state = (
            health.note_read(faults_seen, gaps, total)
            if record_health
            else health.state
        )
        quality = TraceQuality(
            retries=retries,
            gaps=gaps,
            interpolated=interpolated,
            health=state,
        )
        return values, quality

    def poll_times(
        self,
        start: float,
        n_samples: int,
        poll_hz: float,
        stream: str = "poll",
    ) -> np.ndarray:
        """Jittered poll timestamps for one recording session."""
        n_samples = require_int_in_range(
            n_samples, 1, 100_000_000, "n_samples"
        )
        require_positive(poll_hz, "poll_hz")
        grid = start + np.arange(n_samples) / poll_hz
        # Exact-zero sentinel: jitter is configured, never computed.
        if self.poll_jitter == 0.0:  # repro: ignore[API002]
            return grid
        rng = spawn(self._seed, f"sampler-{stream}-{start!r}")
        jitter = self.poll_jitter * rng.standard_normal(n_samples)
        times = grid + jitter
        # The loop never polls backwards in time.
        return np.maximum.accumulate(times)

    def default_poll_hz(self, domain: str) -> float:
        """One poll per sensor update — the paper's default cadence."""
        return 1.0 / self.soc.device(domain).update_period

    def collect(
        self,
        domain: str,
        quantity: str,
        start: float = 0.0,
        duration: Optional[float] = None,
        n_samples: Optional[int] = None,
        poll_hz: Optional[float] = None,
        label: Optional[str] = None,
    ) -> Trace:
        """Record one trace from an hwmon channel.

        Specify the session length either as ``duration`` (seconds) or
        ``n_samples``; ``poll_hz`` defaults to the sensor's update rate
        (polling faster only repeats cached registers).
        """
        if poll_hz is None:
            poll_hz = self.default_poll_hz(domain)
        if (duration is None) == (n_samples is None):
            raise ValueError("specify exactly one of duration or n_samples")
        if n_samples is None:
            require_positive(duration, "duration")
            n_samples = max(1, int(round(duration * poll_hz)))
        times = self.poll_times(
            start, n_samples, poll_hz, stream=f"{domain}-{quantity}"
        )
        if self._faults_active(domain):
            values, quality = self._sample_resilient(domain, quantity, times)
        else:
            values = self.soc.sample(domain, quantity, times)
            quality = None
        return Trace(
            times=times,
            values=values,
            domain=domain,
            quantity=quantity,
            label=label,
            quality=quality,
        )

    def stream(
        self,
        domain: str,
        quantity: str,
        start: float = 0.0,
        duration: Optional[float] = None,
        n_samples: Optional[int] = None,
        poll_hz: Optional[float] = None,
        chunk_samples: Optional[int] = None,
        chunk_duration: Optional[float] = None,
        label: Optional[str] = None,
    ) -> TraceStream:
        """Open a chunked recording session on one hwmon channel.

        Like :meth:`collect`, but the session is consumed as an
        iterator of bounded :class:`Trace` chunks instead of one
        resident array — the shape of a real long-running capture
        loop that flushes to disk as it polls.  Concatenating the
        chunks reproduces the one-shot :meth:`collect` trace
        bit-exactly.

        The chunk size is given as ``chunk_samples`` or
        ``chunk_duration`` (seconds); unspecified, chunks cover one
        second of polling.
        """
        if poll_hz is None:
            poll_hz = self.default_poll_hz(domain)
        if (duration is None) == (n_samples is None):
            raise ValueError("specify exactly one of duration or n_samples")
        if n_samples is None:
            require_positive(duration, "duration")
            n_samples = max(1, int(round(duration * poll_hz)))
        if chunk_samples is not None and chunk_duration is not None:
            raise ValueError(
                "specify at most one of chunk_samples or chunk_duration"
            )
        if chunk_samples is None:
            window = 1.0 if chunk_duration is None else chunk_duration
            require_positive(window, "chunk_duration")
            chunk_samples = max(1, int(round(window * poll_hz)))
        return TraceStream(
            self,
            domain,
            quantity,
            start=start,
            n_samples=n_samples,
            poll_hz=poll_hz,
            chunk_samples=chunk_samples,
            label=label,
        )

    def collect_many(
        self,
        channels,
        start: float = 0.0,
        duration: Optional[float] = None,
        n_samples: Optional[int] = None,
        label: Optional[str] = None,
        on_dead: str = "raise",
    ) -> dict:
        """Record several channels over one window in a single pass.

        Each channel keeps its own jittered poll clock (exactly the
        timestamps :meth:`collect` would draw), but the sensor
        conversions are batched through :meth:`repro.soc.Soc.
        sample_many`: channels sharing a physical device are served
        from one conversion pass over their combined latch windows.
        The returned traces are bit-identical to one :meth:`collect`
        call per channel.

        With a live fault plan armed, each channel instead goes
        through the resilient read path.  ``on_dead`` picks the
        degraded-mode behavior when a channel is dead or suffers a
        total outage: ``"raise"`` propagates the error, ``"drop"``
        omits that channel from the result (so callers can see which
        channels were lost by comparing keys against the request).
        """
        if on_dead not in ("raise", "drop"):
            raise ValueError(
                f"on_dead must be 'raise' or 'drop', got {on_dead!r}"
            )
        channels = [tuple(channel) for channel in channels]
        if not channels:
            raise ValueError("need at least one channel")
        if (duration is None) == (n_samples is None):
            raise ValueError("specify exactly one of duration or n_samples")
        times_by_channel = {}
        for domain, quantity in channels:
            poll_hz = self.default_poll_hz(domain)
            if n_samples is None:
                require_positive(duration, "duration")
                channel_samples = max(1, int(round(duration * poll_hz)))
            else:
                channel_samples = n_samples
            times_by_channel[(domain, quantity)] = self.poll_times(
                start,
                channel_samples,
                poll_hz,
                stream=f"{domain}-{quantity}",
            )
        if not any(self._faults_active(domain) for domain, _ in channels):
            values = self.soc.sample_many(channels, times_by_channel)
            return {
                (domain, quantity): Trace(
                    times=times_by_channel[(domain, quantity)],
                    values=values[(domain, quantity)],
                    domain=domain,
                    quantity=quantity,
                    label=label,
                )
                for domain, quantity in channels
            }
        traces = {}
        for domain, quantity in channels:
            times = times_by_channel[(domain, quantity)]
            try:
                values, quality = self._sample_resilient(
                    domain, quantity, times
                )
            except ChannelOutageError:
                if on_dead == "drop":
                    continue
                raise
            traces[(domain, quantity)] = Trace(
                times=times,
                values=values,
                domain=domain,
                quantity=quantity,
                label=label,
                quality=quality,
            )
        if not traces:
            raise ChannelOutageError(
                channels[0][0],
                channels[0][1],
                f"every requested channel is dead ({len(channels)} dropped)",
            )
        return traces

    def collect_concurrent(
        self,
        channels,
        start: float = 0.0,
        duration: float = None,
        label: Optional[str] = None,
    ) -> dict:
        """Record several channels over the same wall-clock window.

        ``channels`` is an iterable of ``(domain, quantity)`` pairs; on
        the real board these are concurrent polling threads, and here
        each channel's own device/phase/noise applies, so the traces
        are exactly what simultaneous threads would capture.  Served by
        the batched :meth:`collect_many` path (identical traces, fewer
        conversion passes).
        """
        return self.collect_many(
            channels, start=start, duration=duration, label=label
        )

    def __repr__(self) -> str:
        return f"HwmonSampler({self.soc!r}, jitter={self.poll_jitter:.3g}s)"
