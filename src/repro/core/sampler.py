"""Unprivileged hwmon sampling: the attacker's measurement loop.

The attack process is an ordinary user-space loop::

    fd = open("/sys/class/hwmon/hwmon3/curr1_input")
    while recording:
        readings.append(int(pread(fd)))
        clock_nanosleep(...)

Two real-world effects shape the resulting trace and are modeled here:

* the *poll clock* has jitter (nanosleep wakeups are not exact), so
  sample timestamps wander around the nominal grid;
* the sensor refreshes only every ``update_interval`` (35 ms default),
  so polling faster returns runs of repeated values — the paper's RSA
  attack polls at 1 kHz against a 35 ms sensor for exactly this
  oversampled regime.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.traces import Trace
from repro.soc.soc import Soc
from repro.utils.rng import RngLike, spawn
from repro.utils.validation import (
    require_int_in_range,
    require_non_negative,
    require_positive,
)


class HwmonSampler:
    """Polls a SoC's hwmon channels and records traces.

    Args:
        soc: the simulated SoC under attack.
        poll_jitter: RMS timing jitter of the polling loop in seconds
            (nanosleep + scheduler wakeup noise on a Cortex-A53).
        seed: keys the sampler's jitter stream.
    """

    def __init__(
        self,
        soc: Soc,
        poll_jitter: float = 120e-6,
        seed: RngLike = None,
    ):
        if not isinstance(soc, Soc):
            raise TypeError("soc must be a repro.soc.Soc")
        self.soc = soc
        self.poll_jitter = require_non_negative(poll_jitter, "poll_jitter")
        self._seed = seed

    def poll_times(
        self,
        start: float,
        n_samples: int,
        poll_hz: float,
        stream: str = "poll",
    ) -> np.ndarray:
        """Jittered poll timestamps for one recording session."""
        n_samples = require_int_in_range(
            n_samples, 1, 100_000_000, "n_samples"
        )
        require_positive(poll_hz, "poll_hz")
        grid = start + np.arange(n_samples) / poll_hz
        if self.poll_jitter == 0.0:
            return grid
        rng = spawn(self._seed, f"sampler-{stream}-{start!r}")
        jitter = self.poll_jitter * rng.standard_normal(n_samples)
        times = grid + jitter
        # The loop never polls backwards in time.
        return np.maximum.accumulate(times)

    def default_poll_hz(self, domain: str) -> float:
        """One poll per sensor update — the paper's default cadence."""
        return 1.0 / self.soc.device(domain).update_period

    def collect(
        self,
        domain: str,
        quantity: str,
        start: float = 0.0,
        duration: Optional[float] = None,
        n_samples: Optional[int] = None,
        poll_hz: Optional[float] = None,
        label: Optional[str] = None,
    ) -> Trace:
        """Record one trace from an hwmon channel.

        Specify the session length either as ``duration`` (seconds) or
        ``n_samples``; ``poll_hz`` defaults to the sensor's update rate
        (polling faster only repeats cached registers).
        """
        if poll_hz is None:
            poll_hz = self.default_poll_hz(domain)
        if (duration is None) == (n_samples is None):
            raise ValueError("specify exactly one of duration or n_samples")
        if n_samples is None:
            require_positive(duration, "duration")
            n_samples = max(1, int(round(duration * poll_hz)))
        times = self.poll_times(
            start, n_samples, poll_hz, stream=f"{domain}-{quantity}"
        )
        values = self.soc.sample(domain, quantity, times)
        return Trace(
            times=times,
            values=values,
            domain=domain,
            quantity=quantity,
            label=label,
        )

    def collect_many(
        self,
        channels,
        start: float = 0.0,
        duration: Optional[float] = None,
        n_samples: Optional[int] = None,
        label: Optional[str] = None,
    ) -> dict:
        """Record several channels over one window in a single pass.

        Each channel keeps its own jittered poll clock (exactly the
        timestamps :meth:`collect` would draw), but the sensor
        conversions are batched through :meth:`repro.soc.Soc.
        sample_many`: channels sharing a physical device are served
        from one conversion pass over their combined latch windows.
        The returned traces are bit-identical to one :meth:`collect`
        call per channel.
        """
        channels = [tuple(channel) for channel in channels]
        if not channels:
            raise ValueError("need at least one channel")
        if (duration is None) == (n_samples is None):
            raise ValueError("specify exactly one of duration or n_samples")
        times_by_channel = {}
        for domain, quantity in channels:
            poll_hz = self.default_poll_hz(domain)
            if n_samples is None:
                require_positive(duration, "duration")
                channel_samples = max(1, int(round(duration * poll_hz)))
            else:
                channel_samples = n_samples
            times_by_channel[(domain, quantity)] = self.poll_times(
                start,
                channel_samples,
                poll_hz,
                stream=f"{domain}-{quantity}",
            )
        values = self.soc.sample_many(channels, times_by_channel)
        return {
            (domain, quantity): Trace(
                times=times_by_channel[(domain, quantity)],
                values=values[(domain, quantity)],
                domain=domain,
                quantity=quantity,
                label=label,
            )
            for domain, quantity in channels
        }

    def collect_concurrent(
        self,
        channels,
        start: float = 0.0,
        duration: float = None,
        label: Optional[str] = None,
    ) -> dict:
        """Record several channels over the same wall-clock window.

        ``channels`` is an iterable of ``(domain, quantity)`` pairs; on
        the real board these are concurrent polling threads, and here
        each channel's own device/phase/noise applies, so the traces
        are exactly what simultaneous threads would capture.  Served by
        the batched :meth:`collect_many` path (identical traces, fewer
        conversion passes).
        """
        return self.collect_many(
            channels, start=start, duration=duration, label=label
        )

    def __repr__(self) -> str:
        return f"HwmonSampler({self.soc!r}, jitter={self.poll_jitter:.3g}s)"
