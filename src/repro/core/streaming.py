"""Incremental streaming analysis: classify while recording.

The batch analysis plane (:class:`~repro.core.fingerprint.
FingerprintAnalyzer`) must see a complete archive before it emits
anything.  This module is the live counterpart: a pipeline over
bounded :class:`~repro.core.sampler.TraceStream` chunks that emits
fingerprint verdicts *while the sampler is still polling*, with memory
bounded by the window size and latency bounded by the chunk size.

Three layers compose the pipeline:

* :class:`IncrementalFeatureExtractor` — turns a chunked sample stream
  into fixed-width feature rows over sliding windows.  Feature rows go
  through :func:`window_feature_matrix`, the *same* batched kernel
  call the offline path (:meth:`repro.core.traces.TraceSet.to_matrix`)
  uses, so streaming/batch feature parity is structural, not
  coincidental.
* :class:`~repro.core.detector.OnsetTracker` — the incremental onset
  state machine (built by :meth:`OnsetDetector.tracker`), threaded
  through so verdicts know whether the victim was active.
* :class:`StreamingAnalyzer` — runs a pretrained classifier over each
  completed window, smooths confidences across windows
  (:class:`ConfidenceSmoother`) and emits per-window top-k
  :class:`Verdict`\\ s plus :class:`ModelSwitch` events when the
  smoothed decision changes.

Quality provenance survives the whole way: chunks recorded through the
resilient sampling path carry :class:`~repro.core.traces.TraceQuality`
metadata, and every verdict reports the merged quality of the chunks
its window was computed from — a degraded capture yields visibly
degraded verdicts, not silently shaky ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.detector import OnsetDetector, OnsetEvent, OnsetTracker
from repro.core.features import resample_batch
from repro.core.sampler import StreamInterrupted
from repro.core.traces import Trace, TraceQuality
from repro.utils.validation import require_int_in_range

__all__ = [
    "WindowSpec",
    "window_feature_matrix",
    "batch_window_features",
    "FeatureWindow",
    "FeatureBatch",
    "IncrementalFeatureExtractor",
    "ConfidenceSmoother",
    "Verdict",
    "ModelSwitch",
    "Interruption",
    "MonitorUpdate",
    "StreamingAnalyzer",
    "monitor_chunks",
]


@dataclass(frozen=True)
class WindowSpec:
    """Sliding-window geometry over a sample stream.

    Attributes:
        window_samples: samples per analysis window.
        hop_samples: stride between consecutive window starts; equal
            to ``window_samples`` for tumbling windows, smaller for
            overlapping ones (must not exceed the window — a gap would
            drop samples and break the bounded-buffer invariant).
    """

    window_samples: int
    hop_samples: int

    def __post_init__(self):
        require_int_in_range(
            self.window_samples, 1, 100_000_000, "window_samples"
        )
        require_int_in_range(
            self.hop_samples, 1, self.window_samples, "hop_samples"
        )

    def n_windows(self, n_samples: int) -> int:
        """Complete windows inside ``n_samples`` consecutive samples."""
        if n_samples < self.window_samples:
            return 0
        return 1 + (n_samples - self.window_samples) // self.hop_samples


def window_feature_matrix(
    windows: Sequence[np.ndarray], n_features: int
) -> np.ndarray:
    """Fixed-width feature rows for a batch of sample windows.

    *The* feature kernel of both analysis planes: the offline path
    (:meth:`repro.core.traces.TraceSet.to_matrix`) feeds it one window
    per trace, the incremental extractor feeds it every sliding window
    a chunk completes.  Thin by design — it pins both planes to the
    same batched resampling kernel so their features are bit-identical
    whenever their windows are.
    """
    return resample_batch(windows, n_features)


def batch_window_features(
    values: np.ndarray, spec: WindowSpec, n_features: int
) -> np.ndarray:
    """Reference batch form: every sliding window of a complete trace.

    Equal to concatenating the feature batches an
    :class:`IncrementalFeatureExtractor` emits for the same samples
    under *any* chunking — the parity tests and the streaming bench
    hold that equality exactly.
    """
    values = np.asarray(values)
    count = spec.n_windows(int(values.size))
    windows = [
        values[start * spec.hop_samples:
               start * spec.hop_samples + spec.window_samples]
        for start in range(count)
    ]
    if not windows:
        return np.empty((0, n_features))
    return window_feature_matrix(windows, n_features)


@dataclass(frozen=True)
class FeatureWindow:
    """Provenance of one emitted feature row.

    Attributes:
        index: running window number within the stream (0-based).
        start_index: global sample index of the window's first sample.
        start_time / end_time: timestamps of the window's first and
            last samples (``nan`` when the pushed chunks carried no
            times).
        quality: merged :class:`TraceQuality` of every chunk that
            contributed samples to this window; ``None`` when all of
            them were clean fast-path captures.
    """

    index: int
    start_index: int
    start_time: float
    end_time: float
    quality: Optional[TraceQuality] = None


@dataclass(frozen=True)
class FeatureBatch:
    """Every feature row one pushed chunk completed, as an SoA batch."""

    features: np.ndarray  # (n_windows, n_features)
    windows: Tuple[FeatureWindow, ...]

    def __len__(self) -> int:
        return len(self.windows)


class IncrementalFeatureExtractor:
    """Stateful chunk consumer producing sliding-window feature rows.

    Push :class:`Trace` chunks (or raw arrays) in stream order; each
    push returns a :class:`FeatureBatch` holding one feature row per
    window the new samples completed, computed through
    :func:`window_feature_matrix` in a single batched kernel call.

    Memory is bounded by the window: at most ``window_samples -
    hop_samples`` carried samples plus the current chunk are resident,
    never the stream; :attr:`peak_resident_samples` records the
    high-water mark for capacity planning and the streaming bench.
    """

    def __init__(self, spec: WindowSpec, n_features: int):
        self.spec = spec
        self.n_features = require_int_in_range(
            n_features, 1, 1_000_000, "n_features"
        )
        self._values: Optional[np.ndarray] = None
        self._times: Optional[np.ndarray] = None
        # Quality provenance of buffered samples: (start, end, quality)
        # global-index spans, one per contributing chunk, trimmed as
        # the buffer advances.  Rebound, never grown in place.
        self._spans: Tuple[Tuple[int, int, Optional[TraceQuality]], ...] = ()
        self._consumed = 0  # global index of the buffer's first sample
        self._emitted_windows = 0
        #: Largest sample buffer materialized so far.
        self.peak_resident_samples = 0

    @property
    def resident_samples(self) -> int:
        """Samples currently buffered."""
        return 0 if self._values is None else int(self._values.size)

    @property
    def samples_seen(self) -> int:
        """Global samples consumed so far."""
        return self._consumed + self.resident_samples

    @property
    def windows_emitted(self) -> int:
        """Feature rows emitted so far."""
        return self._emitted_windows

    def push_chunk(self, chunk: Trace) -> FeatureBatch:
        """Consume one stream chunk; return the windows it completed."""
        return self.push(
            chunk.values, times=chunk.times, quality=chunk.quality
        )

    def push(
        self,
        values: np.ndarray,
        times: Optional[np.ndarray] = None,
        quality: Optional[TraceQuality] = None,
    ) -> FeatureBatch:
        """Lower-level form of :meth:`push_chunk` for raw arrays."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("values must be one-dimensional")
        if values.size == 0:
            return FeatureBatch(np.empty((0, self.n_features)), ())
        if times is None:
            times = np.full(values.size, np.nan)
        else:
            times = np.asarray(times, dtype=np.float64)
            if times.shape != values.shape:
                raise ValueError("times must match values in length")
        start = self.samples_seen
        self._spans = self._spans + (
            (start, start + int(values.size), quality),
        )
        if self._values is None:
            self._values = values
            self._times = times
        else:
            self._values = np.concatenate([self._values, values])
            self._times = np.concatenate([self._times, times])
        self.peak_resident_samples = max(
            self.peak_resident_samples, int(self._values.size)
        )
        return self._drain()

    def _drain(self) -> FeatureBatch:
        """Emit every complete window in the buffer, then trim it."""
        window = self.spec.window_samples
        hop = self.spec.hop_samples
        rows: List[np.ndarray] = []
        metas: List[FeatureWindow] = []
        while self._values is not None and self._values.size >= window:
            rows.append(self._values[:window])
            metas.append(
                FeatureWindow(
                    index=self._emitted_windows,
                    start_index=self._consumed,
                    start_time=float(self._times[0]),
                    end_time=float(self._times[window - 1]),
                    quality=self._window_quality(
                        self._consumed, self._consumed + window
                    ),
                )
            )
            self._emitted_windows += 1
            self._values = self._values[hop:]
            self._times = self._times[hop:]
            self._consumed += hop
        self._spans = tuple(
            span for span in self._spans if span[1] > self._consumed
        )
        if not rows:
            return FeatureBatch(np.empty((0, self.n_features)), ())
        return FeatureBatch(
            window_feature_matrix(rows, self.n_features), tuple(metas)
        )

    def _window_quality(
        self, start: int, end: int
    ) -> Optional[TraceQuality]:
        """Merged quality of every chunk overlapping [start, end)."""
        overlapping = [
            quality
            for span_start, span_end, quality in self._spans
            if span_start < end and span_end > start
        ]
        if not any(quality is not None for quality in overlapping):
            return None
        merged = TraceQuality()
        for quality in overlapping:
            merged = merged.merged(
                quality if quality is not None else TraceQuality()
            )
        return merged


class ConfidenceSmoother:
    """Exponential moving average over per-window class probabilities.

    ``alpha`` is the weight of the newest window; ``alpha=1.0`` keeps
    raw per-window probabilities (the first update always adopts the
    incoming vector verbatim, so a fresh smoother is bit-transparent
    for single-window streams).  Lower values trade verdict latency
    for stability against one-window misclassifications.
    """

    def __init__(self, alpha: float = 1.0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self._state: Optional[np.ndarray] = None

    def update(self, proba: np.ndarray) -> np.ndarray:
        """Fold one probability vector in; return the smoothed vector."""
        proba = np.asarray(proba, dtype=np.float64)
        if self._state is None or proba.shape != self._state.shape:
            self._state = proba.copy()
        else:
            self._state = (
                self.alpha * proba + (1.0 - self.alpha) * self._state
            )
        return self._state.copy()

    def reset(self) -> None:
        """Forget history; the next update adopts its input verbatim."""
        self._state = None


@dataclass(frozen=True)
class Verdict:
    """One live classification decision for one feature window.

    Attributes:
        window: provenance of the feature row this verdict scored.
        labels: top-k class labels by smoothed confidence (stable
            order, best first).
        confidences: smoothed probabilities matching ``labels``.
        raw_label: argmax of the *unsmoothed* window probabilities —
            diverges from ``labels[0]`` only when smoothing overrode a
            one-window flip.
        switched: the smoothed decision changed from the previous
            verdict's.
        lag_seconds: simulated-time staleness at emission — how far
            the stream's newest sample was past this window's last
            sample when the verdict came out (``nan`` without times).
    """

    window: FeatureWindow
    labels: Tuple[str, ...]
    confidences: Tuple[float, ...]
    raw_label: str
    switched: bool
    lag_seconds: float

    @property
    def label(self) -> str:
        """The smoothed top-1 decision."""
        return self.labels[0]

    @property
    def confidence(self) -> float:
        """Smoothed probability of :attr:`label`."""
        return self.confidences[0]

    @property
    def quality(self) -> Optional[TraceQuality]:
        """Capture quality of the window (``None`` = clean fast path)."""
        return self.window.quality

    @property
    def degraded(self) -> bool:
        """True when any contributing chunk needed the resilient path."""
        quality = self.window.quality
        return quality is not None and not quality.clean


@dataclass(frozen=True)
class ModelSwitch:
    """The smoothed verdict changed class between consecutive windows."""

    window_index: int
    time: float
    previous: Optional[str]
    label: str


@dataclass(frozen=True)
class Interruption:
    """The underlying stream died mid-run (all retries exhausted)."""

    message: str
    samples_seen: int


@dataclass(frozen=True)
class MonitorUpdate:
    """Everything one pushed chunk produced.

    ``events`` interleaves :class:`~repro.core.detector.OnsetEvent`,
    :class:`ModelSwitch` and :class:`Interruption` records in stream
    order.
    """

    verdicts: Tuple[Verdict, ...]
    events: Tuple[object, ...] = ()

    @property
    def episodes(self) -> Tuple[OnsetEvent, ...]:
        """Closed-episode events inside this update."""
        return tuple(
            event
            for event in self.events
            if isinstance(event, OnsetEvent) and event.kind == "episode"
        )


class StreamingAnalyzer:
    """Live verdicts over a chunked sample stream.

    Composes the incremental feature extractor, an optional
    :class:`~repro.core.detector.OnsetTracker` and a pretrained
    classifier (anything with ``classes_`` and ``predict_proba``, e.g.
    the fingerprint forest or an
    :class:`~repro.ml.streaming.OnlineSoftmaxClassifier`).  Push
    :class:`Trace` chunks in stream order; every push returns a
    :class:`MonitorUpdate` with the verdicts and detector events the
    new samples completed.
    """

    def __init__(
        self,
        classifier,
        spec: WindowSpec,
        n_features: int,
        *,
        top_k: int = 3,
        smoothing: float = 1.0,
        detector: Optional[OnsetDetector] = None,
        baseline: Optional[Tuple[float, float]] = None,
    ):
        self.classifier = classifier
        self.spec = spec
        self.extractor = IncrementalFeatureExtractor(spec, n_features)
        self.smoother = ConfidenceSmoother(smoothing)
        self._detector = detector
        self._baseline = baseline
        self.tracker: Optional[OnsetTracker] = None
        if detector is not None:
            self.tracker = detector.tracker(
                baseline=baseline, mask_baseline_region=False
            )
        classes = np.asarray(classifier.classes_)
        self.top_k = int(min(max(1, top_k), classes.size))
        self._last_label: Optional[str] = None
        self._verdicts_emitted = 0

    @property
    def verdicts_emitted(self) -> int:
        """Total verdicts emitted so far."""
        return self._verdicts_emitted

    @property
    def peak_resident_samples(self) -> int:
        """High-water mark of the feature buffer (bounded by O(window))."""
        return self.extractor.peak_resident_samples

    def reset(self) -> None:
        """Forget smoothing/decision state between independent streams.

        Keeps the classifier and window geometry; drops buffered
        samples, smoothed confidences and the last decision so the
        next stream is scored exactly like a fresh analyzer.
        """
        self.extractor = IncrementalFeatureExtractor(
            self.spec, self.extractor.n_features
        )
        self.smoother.reset()
        if self._detector is not None:
            self.tracker = self._detector.tracker(
                baseline=self._baseline, mask_baseline_region=False
            )
        self._last_label = None

    def push_chunk(self, chunk: Trace) -> MonitorUpdate:
        """Consume one stream chunk; return verdicts + events."""
        events: List[object] = []
        values = np.asarray(chunk.values, dtype=np.float64)
        if self.tracker is not None:
            events.extend(self.tracker.push(values, chunk.times))
        batch = self.extractor.push_chunk(chunk)
        chunk_end = (
            float(chunk.times[-1]) if chunk.times.size else float("nan")
        )
        verdicts = self._score(batch, chunk_end, events)
        return MonitorUpdate(verdicts=tuple(verdicts), events=tuple(events))

    def finish(self) -> MonitorUpdate:
        """Close the stream: flush trailing detector state.

        A trailing partial window (fewer than ``window_samples``
        buffered samples) is discarded, mirroring the batch path's
        whole-window contract.
        """
        events: List[object] = []
        if self.tracker is not None:
            events.extend(self.tracker.finish())
        return MonitorUpdate(verdicts=(), events=tuple(events))

    def _score(
        self,
        batch: FeatureBatch,
        chunk_end: float,
        events: List[object],
    ) -> List[Verdict]:
        if not len(batch):
            return []
        classes = np.asarray(self.classifier.classes_)
        proba = np.asarray(self.classifier.predict_proba(batch.features))
        smoothed = np.empty_like(proba)
        for row in range(proba.shape[0]):
            smoothed[row] = self.smoother.update(proba[row])
        # One stable argsort over the whole batch (API004: loops must
        # not re-sort per window).
        order = np.argsort(-smoothed, axis=1, kind="stable")
        raw_top = np.argmax(proba, axis=1)
        verdicts: List[Verdict] = []
        for row, meta in enumerate(batch.windows):
            top = order[row, : self.top_k]
            labels = tuple(str(label) for label in classes[top])
            previous = self._last_label
            switched = previous is not None and labels[0] != previous
            if labels[0] != previous:
                events.append(
                    ModelSwitch(
                        window_index=meta.index,
                        time=meta.end_time,
                        previous=previous,
                        label=labels[0],
                    )
                )
            self._last_label = labels[0]
            verdicts.append(
                Verdict(
                    window=meta,
                    labels=labels,
                    confidences=tuple(
                        float(value) for value in smoothed[row, top]
                    ),
                    raw_label=str(classes[raw_top[row]]),
                    switched=switched,
                    lag_seconds=chunk_end - meta.end_time,
                )
            )
            self._verdicts_emitted += 1
        return verdicts


def monitor_chunks(
    analyzer: StreamingAnalyzer,
    chunks: Iterable[Trace],
) -> Iterator[MonitorUpdate]:
    """Drive an analyzer over a chunk iterable, fault-tolerantly.

    Yields one :class:`MonitorUpdate` per chunk and a final update
    from :meth:`StreamingAnalyzer.finish`.  A
    :class:`~repro.core.sampler.StreamInterrupted` escaping the chunk
    source (channel dead beyond the outage budget) ends the stream
    early: the final update then also carries an
    :class:`Interruption` event instead of propagating the exception,
    so a monitor keeps the verdicts it already earned.
    """
    iterator = iter(chunks)
    interruption: Optional[Interruption] = None
    while True:
        try:
            chunk = next(iterator)
        except StopIteration:
            break
        except StreamInterrupted as exc:
            interruption = Interruption(
                message=str(exc),
                samples_seen=analyzer.extractor.samples_seen,
            )
            break
        yield analyzer.push_chunk(chunk)
    final = analyzer.finish()
    if interruption is not None:
        final = MonitorUpdate(
            verdicts=final.verdicts,
            events=final.events + (interruption,),
        )
    yield final
