"""Evaluation report generation (artifact-evaluation tooling).

Runs a compact version of every headline experiment and renders one
markdown report with measured-vs-paper columns — the file an artifact
evaluator wants to diff against EXPERIMENTS.md.  Exposed on the CLI as
``python -m repro.cli report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.utils.validation import require_int_in_range


@dataclass
class ReportBuilder:
    """Accumulates sections and renders GitHub-flavored markdown."""

    title: str
    _chunks: List[str] = field(default_factory=list)

    def section(self, heading: str) -> "ReportBuilder":
        """Start a new section."""
        self._chunks.append(f"\n## {heading}\n")
        return self

    def paragraph(self, text: str) -> "ReportBuilder":
        """Add prose."""
        self._chunks.append(f"\n{text}\n")
        return self

    def table(
        self, header: Sequence[str], rows: Sequence[Sequence]
    ) -> "ReportBuilder":
        """Add a markdown table."""
        widths = [len(str(h)) for h in header]
        text_rows = [[str(cell) for cell in row] for row in rows]
        for row in text_rows:
            if len(row) != len(widths):
                raise ValueError("row width does not match header")
        lines = [
            "| " + " | ".join(str(h) for h in header) + " |",
            "|" + "|".join("---" for _ in header) + "|",
        ]
        for row in text_rows:
            lines.append("| " + " | ".join(row) + " |")
        self._chunks.append("\n" + "\n".join(lines) + "\n")
        return self

    def render(self) -> str:
        """The full markdown document."""
        return f"# {self.title}\n" + "".join(self._chunks)

    def write(self, path: Union[str, Path]) -> Path:
        """Render to a file and return its path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path


def generate_report(
    seed: int = 0,
    samples_per_level: int = 500,
    rsa_samples: int = 6000,
    fingerprint_models: Optional[List[str]] = None,
    path: Optional[Union[str, Path]] = None,
    board: Optional[str] = None,
    workers: Optional[int] = None,
) -> str:
    """Run the compact evaluation and render the markdown report.

    Returns the markdown text; also writes it when ``path`` is given.
    The compact scale keeps the whole run in the ~1 minute range while
    hitting every headline number's band.  ``board`` selects the
    Table I platform (default ZCU102); ``workers`` caps the
    fingerprinting evaluation pool (the report is bit-identical at any
    worker count).
    """
    require_int_in_range(samples_per_level, 10, 1_000_000,
                         "samples_per_level")
    require_int_in_range(rsa_samples, 100, 100_000_000, "rsa_samples")
    from repro.core.characterize import characterize
    from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
    from repro.core.rsa_attack import RsaHammingWeightAttack
    from repro.boards.catalog import get_board
    from repro.session import AttackSession, DEFAULT_BOARD

    board = DEFAULT_BOARD if board is None else board
    report = ReportBuilder("AmpereBleed reproduction — compact evaluation")
    report.paragraph(
        f"Board {get_board(board).name}; seed {seed}; reduced scale "
        f"(see EXPERIMENTS.md for full runs)."
    )

    # Fig 2.
    sweep = characterize(
        samples_per_level=samples_per_level, seed=seed, board=board
    )
    report.section("Fig 2 — channel characterization")
    report.table(
        ("channel", "pearson", "LSB/step", "paper"),
        [
            ("current", f"{sweep.current.pearson:+.4f}",
             f"{sweep.current.lsb_step:.1f}", "0.999 / ~40"),
            ("voltage", f"{sweep.voltage.pearson:+.4f}",
             f"{sweep.voltage.lsb_step:.2f}", "0.958 / sub-LSB"),
            ("power", f"{sweep.power.pearson:+.4f}",
             f"{sweep.power.lsb_step:.1f}", "0.999 / 1-2"),
            ("RO", f"{sweep.ro.pearson:+.4f}",
             f"{sweep.ro.lsb_step:.2f}", "-0.996 / n/a"),
        ],
    )
    report.paragraph(
        f"Current-vs-RO variation ratio: "
        f"**{sweep.current_vs_ro_variation:.0f}x** (paper: 261x)."
    )

    # Table III (subset).
    if fingerprint_models is None:
        fingerprint_models = [
            "mobilenet-v1-1.0", "squeezenet-1.1", "efficientnet-lite0",
            "inception-v3", "resnet-50", "vgg-19", "densenet-121",
        ]
    config = FingerprintConfig(
        duration=5.0, traces_per_model=8, n_folds=4, forest_trees=20
    )
    fingerprint_session = AttackSession.create(board=board, seed=seed)
    fingerprinter = DnnFingerprinter(
        session=fingerprint_session, config=config, workers=workers
    )
    datasets = fingerprinter.collect_datasets(
        models=fingerprint_models,
        channels=[("fpga", "current"), ("fpga", "voltage")],
    )
    report.section("Table III — fingerprinting (subset)")
    rows = []
    for channel, dataset in datasets.items():
        result = fingerprinter.evaluate_channel(dataset)
        rows.append(
            (f"{channel[0]}/{channel[1]}", f"{result.top1:.3f}",
             f"{result.top5:.3f}")
        )
    report.table(("channel", "top-1", "top-5"), rows)

    # Fig 4.
    attack = RsaHammingWeightAttack(seed=seed, board=board)
    current = attack.sweep(n_samples=rsa_samples)
    power = attack.sweep(quantity="power", n_samples=rsa_samples)
    report.section("Fig 4 — RSA Hamming weight")
    report.table(
        ("channel", "distinguishable groups (of 17)", "paper"),
        [
            ("current", current.distinguishable_groups(), "17"),
            ("power", power.distinguishable_groups(), "~5"),
        ],
    )
    calibration = current.calibration()
    report.paragraph(
        f"Current calibration: {calibration.slope:.4f} mA per unit "
        f"Hamming weight (r = {calibration.r:.4f})."
    )

    markdown = report.render()
    if path is not None:
        ReportBuilder(report.title, report._chunks).write(path)
    return markdown
