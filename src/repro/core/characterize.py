"""Characterization sweep: Fig 2 of the paper.

The experiment: deploy 160 k power-virus instances (160 groups), then
activate 0..160 groups in turn.  At each of the 161 levels, record
``samples_per_level`` readings of the FPGA rail's current, voltage and
power through hwmon, and the same number of RO-counter samples from a
crafted-circuit baseline on the same rail.  Per-level means are then
correlated against the activation level.

Expected shape (paper): current and power correlate at ~0.999 with
~40 current-LSBs per level but only 1-2 power-LSBs; voltage correlates
at ~0.958 with sub-LSB movement; RO counts correlate at ~-0.996; and
the current channel's relative variation is ~261x the RO channel's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.stats import (
    linear_fit,
    lsb_per_step,
    pearson,
    variation_ratio,
)
from repro.fpga.power_virus import PowerVirusArray
from repro.fpga.ring_osc import RoSensorBank
from repro.soc.soc import Soc
from repro.soc.workload import ConstantActivity
from repro.utils.rng import RngLike, spawn
from repro.utils.validation import require_int_in_range

#: hwmon channel LSBs in reported units (mA, mV, uW) plus RO counts.
CHANNEL_LSBS: Dict[str, float] = {
    "current": 1.0,  # 1 mA
    "voltage": 1.25,  # 1.25 mV reported on a 1 mV integer grid
    "power": 25_000.0,  # 25 mW in uW
    "ro": 1.0,  # one counter increment
}


@dataclass(frozen=True)
class ChannelSweep:
    """Per-level mean readings of one channel over the sweep."""

    name: str
    lsb: float
    means: np.ndarray

    @property
    def pearson(self) -> float:
        """Correlation of per-level means with the activation level."""
        return pearson(np.arange(self.means.size), self.means)

    @property
    def lsb_step(self) -> float:
        """Mean reading change per level, in channel LSBs."""
        return lsb_per_step(self.means, self.lsb)

    @property
    def slope(self) -> float:
        """Fitted reading change per level, in channel units."""
        return linear_fit(np.arange(self.means.size), self.means).slope


@dataclass(frozen=True)
class CharacterizationResult:
    """Everything Fig 2 plots, plus the §I variation-ratio headline."""

    levels: np.ndarray
    current: ChannelSweep
    voltage: ChannelSweep
    power: ChannelSweep
    ro: ChannelSweep

    @property
    def current_vs_ro_variation(self) -> float:
        """The paper's 261x figure: current variation over RO variation."""
        return variation_ratio(self.current.means, self.ro.means)

    def summary(self) -> Dict[str, Tuple[float, float]]:
        """(pearson, lsb_step) per channel — the Fig 2 table."""
        return {
            sweep.name: (sweep.pearson, sweep.lsb_step)
            for sweep in (self.current, self.voltage, self.power, self.ro)
        }


def characterize(
    soc: Optional[Soc] = None,
    virus: Optional[PowerVirusArray] = None,
    ro_bank: Optional[RoSensorBank] = None,
    samples_per_level: int = 10_000,
    levels: Optional[np.ndarray] = None,
    seed: RngLike = 0,
    session=None,
    board=None,
) -> CharacterizationResult:
    """Run the Fig 2 sweep and aggregate per-level statistics.

    Args:
        soc: platform under test (default: the session's seeded board).
        virus: the activatable victim array (default: the paper's
            160 groups x 1 k instances).
        ro_bank: the crafted-circuit baseline (default: distributed
            Zhao & Suh RO bank).
        samples_per_level: hwmon/RO samples averaged per level
            (paper: 10 000; reduce for quick runs — the means converge
            long before that).
        levels: activation levels to visit (default 0..n_groups).
        seed: keys the RO jitter stream (the SoC's own seed keys the
            hwmon noise).
        session: acquisition session superseding ``soc``.
        board: board name when no session/soc is given (default
            ZCU102).
    """
    from repro.session import resolve_session

    samples_per_level = require_int_in_range(
        samples_per_level, 2, 10_000_000, "samples_per_level"
    )
    soc = resolve_session(session, soc=soc, board=board, seed=seed).soc
    if virus is None:
        virus = PowerVirusArray(seed=seed)
    if ro_bank is None:
        ro_bank = RoSensorBank()
    if levels is None:
        levels = virus.sweep_levels()
    levels = np.asarray(levels, dtype=np.int64)

    # Both circuits co-reside on the fabric: the paper's exact setup.
    for spec in (virus.circuit_spec(), ro_bank.circuit_spec()):
        try:
            soc.fabric.deploy(spec)
        except Exception:
            pass  # already deployed by a previous sweep on this SoC

    rail = soc.rail("fpga")
    device = soc.device("fpga")
    period = device.update_period
    session = (samples_per_level + 8) * period
    ro_rng = spawn(seed, "characterize-ro")
    ro_window = ro_bank.sample_window

    current_means = np.empty(levels.size)
    voltage_means = np.empty(levels.size)
    power_means = np.empty(levels.size)
    ro_means = np.empty(levels.size)

    # The RO bank itself burns constant power on the rail (its loops
    # toggle continuously); it shifts the floor but not the slopes.
    soc.replace_workload(
        "fpga", "ro-bank", ConstantActivity(0.05)
    )

    for position, level in enumerate(levels):
        virus.set_active_groups(int(level))
        start = position * session + period
        soc.replace_workload("fpga", "power-virus", virus.timeline())

        poll_times = start + np.arange(samples_per_level) * period
        current_means[position] = soc.sample(
            "fpga", "current", poll_times
        ).mean()
        voltage_means[position] = soc.sample(
            "fpga", "voltage", poll_times
        ).mean()
        power_means[position] = soc.sample(
            "fpga", "power", poll_times
        ).mean()

        # The RO samples its counter at 2 MHz from the same rail; the
        # rail voltage it sees carries the regulator droop + ripple.
        ro_times = start + np.arange(samples_per_level) * ro_window
        _, rail_volts = rail.window_state(
            ro_times,
            ro_times + ro_window,
            ripple=rail.ripple_sigma
            * ro_rng.standard_normal(samples_per_level),
        )
        ro_means[position] = ro_bank.counts(rail_volts, rng=ro_rng).mean()

    soc.detach_workload("fpga", "power-virus")
    soc.detach_workload("fpga", "ro-bank")

    return CharacterizationResult(
        levels=levels,
        current=ChannelSweep("current", CHANNEL_LSBS["current"], current_means),
        voltage=ChannelSweep("voltage", CHANNEL_LSBS["voltage"], voltage_means),
        power=ChannelSweep("power", CHANNEL_LSBS["power"], power_means),
        ro=ChannelSweep("ro", CHANNEL_LSBS["ro"], ro_means),
    )
