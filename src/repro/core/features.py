"""Feature extraction for side-channel traces.

The paper's fingerprinting uses "straightforward features" — the raw
hwmon readings over the collection window — fed to a random forest.
The only processing needed is bringing variable-length polling sessions
onto a fixed-width grid (resampling) so traces of different durations
and poll phases align column-wise, plus optional standardization.

Resampling has two entry points: :func:`resample_values` for one trace
(the online classification path) and :func:`resample_batch` for a
ragged list of traces (the dataset→matrix path).  The batch form
groups traces by length and interpolates each group in one vectorized
pass; it is bit-identical to stacking per-trace ``np.interp`` calls,
which ``tests/test_kernel_parity.py`` pins.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import require_int_in_range


def resample_values(values: np.ndarray, n_features: int) -> np.ndarray:
    """Resample a 1-D series to exactly ``n_features`` points.

    Linear interpolation over the normalized sample index: robust to
    small length differences between traces (poll jitter, truncation)
    while preserving the trace's shape.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("values must be a non-empty 1-D array")
    n_features = require_int_in_range(n_features, 1, 1_000_000, "n_features")
    if values.size == 1:
        return np.full(n_features, values[0])
    source = np.linspace(0.0, 1.0, values.size)
    target = np.linspace(0.0, 1.0, n_features)
    return np.interp(target, source, values)


def _interp_rows(
    target: np.ndarray, length: int, rows: np.ndarray
) -> np.ndarray:
    """``np.interp(target, linspace(0, 1, length), row)`` for every row.

    Mirrors NumPy's compiled interp arithmetic exactly — same interval
    lookup, same ``slope * (x - xp[j]) + fp[j]`` evaluation — so the
    vectorized result is bitwise equal to the per-row calls.  The
    endpoint patches reproduce interp's short-circuits: ``x`` at or
    past the last knot returns the last sample directly (the slope
    formula there is mathematically equal but not bitwise), and exact
    interior knot hits return the knot's sample.
    """
    source = np.linspace(0.0, 1.0, length)
    interval = np.searchsorted(source, target, side="right") - 1
    interval = np.clip(interval, 0, length - 2)
    x0 = source[interval]
    slope = (rows[:, interval + 1] - rows[:, interval]) / (
        source[interval + 1] - x0
    )
    result = slope * (target - x0) + rows[:, interval]
    exact = x0 == target
    if exact.any():
        result[:, exact] = rows[:, interval[exact]]
    result[:, target >= source[-1]] = rows[:, -1:]
    result[:, target <= source[0]] = rows[:, :1]
    return result


def resample_batch(
    values_list: Sequence[np.ndarray], n_features: int
) -> np.ndarray:
    """Resample a ragged batch of 1-D series into an ``(n_traces,
    n_features)`` matrix.

    Structure-of-arrays form of :func:`resample_values`: traces are
    grouped by length and every group is interpolated in one pass
    (traces of equal length share their knot grid and interval
    lookup).  Output rows are bit-identical to calling
    :func:`resample_values` per trace.
    """
    n_features = require_int_in_range(n_features, 1, 1_000_000, "n_features")
    arrays = [np.asarray(values, dtype=np.float64) for values in values_list]
    for values in arrays:
        if values.ndim != 1 or values.size == 0:
            raise ValueError("values must be a non-empty 1-D array")
    matrix = np.empty((len(arrays), n_features))
    lengths = np.array([values.size for values in arrays], dtype=np.int64)
    target = np.linspace(0.0, 1.0, n_features)
    for length in np.unique(lengths):
        members = np.nonzero(lengths == length)[0]
        group = np.stack([arrays[index] for index in members])
        if length == 1:
            matrix[members] = group  # constant rows broadcast across
        else:
            matrix[members] = _interp_rows(target, int(length), group)
    return matrix


def standardize(matrix: np.ndarray) -> np.ndarray:
    """Zero-mean / unit-variance per column (constant columns pass
    through unchanged, shifted to zero)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    safe = np.where(std > 0, std, 1.0)
    return (matrix - mean) / safe


def summary_features(values: np.ndarray) -> np.ndarray:
    """Compact 8-feature summary per trace.

    Mean / std / min / max / quartiles / mean absolute step — useful
    for quick demos and as a baseline against the full resampled
    representation.

    Accepts one trace (1-D, returns shape ``(8,)``) or a batch of
    equal-length traces (2-D row-per-trace, returns ``(n_traces, 8)``
    with one summary row per input row, bit-identical to calling the
    1-D form row by row).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 2:
        if values.shape[0] == 0 or values.shape[1] == 0:
            raise ValueError("batch must be non-empty in both dimensions")
        q1, median, q3 = np.percentile(values, [25, 50, 75], axis=1)
        if values.shape[1] > 1:
            mean_step = np.mean(np.abs(np.diff(values, axis=1)), axis=1)
        else:
            mean_step = np.zeros(values.shape[0])
        return np.column_stack(
            [
                values.mean(axis=1),
                values.std(axis=1),
                values.min(axis=1),
                values.max(axis=1),
                q1,
                median,
                q3,
                mean_step,
            ]
        )
    if values.ndim != 1 or values.size == 0:
        raise ValueError("values must be a non-empty 1-D array")
    q1, median, q3 = np.percentile(values, [25, 50, 75])
    if values.size > 1:
        mean_step = float(np.mean(np.abs(np.diff(values))))
    else:
        mean_step = 0.0
    return np.array(
        [
            values.mean(),
            values.std(),
            values.min(),
            values.max(),
            q1,
            median,
            q3,
            mean_step,
        ]
    )
