"""Feature extraction for side-channel traces.

The paper's fingerprinting uses "straightforward features" — the raw
hwmon readings over the collection window — fed to a random forest.
The only processing needed is bringing variable-length polling sessions
onto a fixed-width grid (resampling) so traces of different durations
and poll phases align column-wise, plus optional standardization.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require_int_in_range


def resample_values(values: np.ndarray, n_features: int) -> np.ndarray:
    """Resample a 1-D series to exactly ``n_features`` points.

    Linear interpolation over the normalized sample index: robust to
    small length differences between traces (poll jitter, truncation)
    while preserving the trace's shape.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("values must be a non-empty 1-D array")
    n_features = require_int_in_range(n_features, 1, 1_000_000, "n_features")
    if values.size == 1:
        return np.full(n_features, values[0])
    source = np.linspace(0.0, 1.0, values.size)
    target = np.linspace(0.0, 1.0, n_features)
    return np.interp(target, source, values)


def standardize(matrix: np.ndarray) -> np.ndarray:
    """Zero-mean / unit-variance per column (constant columns pass
    through unchanged, shifted to zero)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    safe = np.where(std > 0, std, 1.0)
    return (matrix - mean) / safe


def summary_features(values: np.ndarray) -> np.ndarray:
    """Compact 8-feature summary of one trace.

    Mean / std / min / max / quartiles / mean absolute step — useful
    for quick demos and as a baseline against the full resampled
    representation.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("values must be a non-empty 1-D array")
    q1, median, q3 = np.percentile(values, [25, 50, 75])
    if values.size > 1:
        mean_step = float(np.mean(np.abs(np.diff(values))))
    else:
        mean_step = 0.0
    return np.array(
        [
            values.mean(),
            values.std(),
            values.min(),
            values.max(),
            q1,
            median,
            q3,
            mean_step,
        ]
    )
