"""End-to-end attack campaign: what the malicious process actually does.

The paper's threat model is a single unprivileged process dropped onto
the device (OTA update, malware).  Its kill chain through this library:

1. **Recon** — walk ``/sys/class/hwmon``, read each device's ``name``
   file, and match the INA226 instances against the known sensitive
   designators (Table II knowledge ships with the malware).
2. **Stakeout** — poll the FPGA current file until victim activity
   starts (onset detection), so traces are not wasted on idle.
3. **Attack** — hand the located channels to the fingerprinting or
   RSA pipelines.

:class:`AttackCampaign` packages those stages so an end-to-end run is
three calls; the examples and the campaign tests exercise it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.boards.zcu102 import SENSITIVE_SENSOR_MAP
from repro.core.detector import OnsetDetector
from repro.core.io import TraceArchiveWriter
from repro.core.sampler import HwmonSampler
from repro.core.traces import Trace
from repro.soc.soc import Soc
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class ReconReport:
    """What sensor enumeration found."""

    #: Every hwmon device: path -> name-file contents.
    devices: Dict[str, str]
    #: domain key -> curr1_input path, for recognized sensitive sensors.
    sensitive_paths: Dict[str, str]

    @property
    def found_fpga_sensor(self) -> bool:
        """Did recon locate the FPGA current channel?"""
        return "fpga" in self.sensitive_paths


def deploy_victim(
    session,
    start: float = 2.0,
    amplitude: float = 3.0,
    domain: str = "fpga",
    name: str = "victim",
):
    """Attach a deterministic step-on victim workload to a session.

    The canonical stakeout target: a rail that idles until ``start``
    seconds, then holds ``amplitude`` activity forever.  Pulling this
    out of the test fixtures makes a campaign self-contained from just
    ``(board, seed, start, amplitude)`` — exactly what a fleet job
    pickles — so every board in a sharded run deploys an identical
    victim and resumed runs reproduce it bit for bit.  Returns the
    session for chaining.
    """
    from repro.soc.workload import PiecewiseActivity

    require_positive(start, "start")
    session.soc.attach_workload(
        domain,
        name,
        PiecewiseActivity(
            [0.0, float(start), 1e9], [0.0, float(amplitude)]
        ),
    )
    return session


class AttackCampaign:
    """Drives the recon -> stakeout -> attack chain on one SoC."""

    def __init__(
        self,
        soc: Optional[Soc] = None,
        sampler: Optional[HwmonSampler] = None,
        detector: Optional[OnsetDetector] = None,
        seed: Optional[int] = 0,
        session=None,
        board=None,
    ):
        from repro.session import resolve_session

        self.session = resolve_session(
            session, soc=soc, sampler=sampler, board=board, seed=seed
        )
        self.detector = detector if detector is not None else OnsetDetector()

    @property
    def soc(self) -> Soc:
        return self.session.soc

    @property
    def sampler(self) -> HwmonSampler:
        return self.session.sampler

    # ------------------------------------------------------------ recon

    def recon(self) -> ReconReport:
        """Enumerate hwmon and locate the sensitive INA226 instances.

        Uses only unprivileged reads of ``name`` files — exactly what
        ``grep . /sys/class/hwmon/hwmon*/name`` does on the real board.
        """
        devices: Dict[str, str] = {}
        sensitive: Dict[str, str] = {}
        known = {
            f"ina226_{designator}": domain
            for domain, designator in SENSITIVE_SENSOR_MAP.items()
        }
        for device in self.soc.hwmon.devices():
            name = device.read("name")
            devices[device.path] = name
            domain = known.get(name)
            if domain is not None:
                sensitive[domain] = f"{device.path}/curr1_input"
        return ReconReport(devices=devices, sensitive_paths=sensitive)

    # --------------------------------------------------------- stakeout

    def wait_for_victim(
        self,
        domain: str = "fpga",
        start: float = 0.0,
        timeout: float = 30.0,
        chunk: float = 2.0,
    ) -> Tuple[bool, float]:
        """Poll until activity appears on a channel (or timeout).

        Returns ``(found, onset_time)``; consumes the channel as one
        chunked :class:`~repro.core.sampler.TraceStream`, so memory is
        bounded by the ``chunk`` window no matter how long the
        stakeout runs.  The stream's first chunk calibrates the idle
        baseline; later chunks are judged against it, so a victim that
        is already running when a chunk starts is still caught.
        """
        require_positive(timeout, "timeout")
        require_positive(chunk, "chunk")
        stream = self.sampler.stream(
            domain,
            "current",
            start=start,
            duration=timeout,
            chunk_duration=chunk,
        )
        return self.detector.scan_for_onset(stream)

    # ----------------------------------------------------------- attack

    def record_victim(
        self,
        domain: str = "fpga",
        start: float = 0.0,
        duration: float = 5.0,
        label: Optional[str] = None,
    ) -> Trace:
        """Record an attack trace once the victim is known to run."""
        return self.sampler.collect(
            domain, "current", start=start, duration=duration, label=label
        )

    def run(
        self,
        victim_start: float,
        trace_duration: float = 5.0,
        stakeout_from: float = 0.0,
        timeout: float = 60.0,
    ) -> Optional[Trace]:
        """The full chain against an already-deployed victim.

        Returns the attack trace, or ``None`` when recon or stakeout
        fails (no sensors / victim never ran).
        """
        report = self.recon()
        if not report.found_fpga_sensor:
            return None
        found, onset = self.wait_for_victim(
            start=stakeout_from, timeout=timeout
        )
        if not found:
            return None
        return self.record_victim(
            start=max(onset, victim_start), duration=trace_duration
        )

    def run_archived(
        self,
        out: Union[str, Path],
        victim_start: float,
        trace_duration: float = 5.0,
        stakeout_from: float = 0.0,
        timeout: float = 60.0,
        chunk_duration: float = 1.0,
        resume: bool = False,
    ) -> Optional[Trace]:
        """The full chain, checkpointed to a v2 trace archive.

        Each stage (recon, stakeout, every recorded attack chunk)
        lands in the archive manifest as it completes, so a campaign
        killed at any point resumes from its last checkpoint with
        ``resume=True`` — the stages already done are skipped and the
        attack trace continues at the exact chunk where the kill hit.
        Recording is deterministic, so the sealed archive (and the
        returned trace) is byte-identical to an uninterrupted run's.

        Returns the reassembled attack trace, or ``None`` when recon
        or stakeout fails (the archive is sealed either way, with an
        ``outcome`` in its metadata).
        """
        meta = {
            "experiment": "campaign",
            "board": self.soc.board.name,
            "seed": self.session.seed,
            "victim_start": victim_start,
            "trace_duration": trace_duration,
            "stakeout_from": stakeout_from,
            "timeout": timeout,
            "chunk_duration": chunk_duration,
        }
        writer = TraceArchiveWriter(out, meta=meta, resume=resume)
        try:
            state: Dict = {}
            if resume:
                writer.drop_entries_after_checkpoint()
                state = dict(writer.checkpoint_state or {})
            stages = {"recon": 1, "stakeout": 2, "attack": 3}
            reached = stages.get(state.get("stage"), 0)
            if reached < 1:
                report = self.recon()
                state = {
                    "stage": "recon",
                    "found_fpga_sensor": report.found_fpga_sensor,
                }
                writer.checkpoint(state)
            if not state.get("found_fpga_sensor"):
                writer.update_meta(outcome="no-sensor")
                writer.close()
                return None
            if reached < 2:
                found, onset = self.wait_for_victim(
                    start=stakeout_from, timeout=timeout
                )
                state = dict(
                    state,
                    stage="stakeout",
                    victim_found=found,
                    onset=float(onset),
                )
                writer.checkpoint(state)
            if not state.get("victim_found"):
                writer.update_meta(outcome="no-victim")
                writer.close()
                return None
            chunks_done = int(state.get("chunks_done", 0))
            stream = self.sampler.stream(
                "fpga",
                "current",
                start=max(float(state["onset"]), victim_start),
                duration=trace_duration,
                chunk_duration=chunk_duration,
                label="campaign-attack",
            )
            recorded = []
            for index, chunk in enumerate(stream):
                recorded.append(chunk)
                if index < chunks_done:
                    # Already persisted before the interruption; the
                    # chunk was regenerated (deterministically) only
                    # to rebuild the in-memory trace and advance the
                    # stream's jitter state.
                    continue
                writer.append(chunk, trace_id="attack", part=index)
                state = dict(state, stage="attack", chunks_done=index + 1)
                writer.checkpoint(state)
            writer.update_meta(outcome="recorded")
            writer.close()
        except BaseException:
            # Leave the archive visibly unsealed for a later resume.
            writer.abort()
            raise
        first = recorded[0]
        return Trace(
            times=np.concatenate([c.times for c in recorded]),
            values=np.concatenate([c.values for c in recorded]),
            domain=first.domain,
            quantity=first.quantity,
            label=first.label,
        )
