"""RSA Hamming-weight inference (paper §IV-C, Fig 4).

The victim is a 100 MHz RSA-1024 square-and-multiply circuit looping
encryptions of a random plaintext; its secret exponent is sealed in
the encrypted bitstream.  The unprivileged attacker polls the FPGA
current file at 1 kHz and records 100 k samples.  Because the multiply
module is active only on 1-bits, the rail's mean power — hence current
— is linear in the exponent's Hamming weight, and the 1 mA current
resolution separates all 17 test keys while the 25 mW power resolution
collapses them into ~5 groups.

Like the fingerprinting attack, this one is split across the two
planes: :meth:`RsaHammingWeightAttack.collect_sweep` records labeled
traces on the device (optionally streaming them to an archive), and
:func:`sweep_from_traces` turns a trace set — fresh or loaded from
disk — into the Fig 4 distributions.  ``sweep()`` composes the two
for the classic in-process run.

Knowing the Hamming weight shrinks the brute-force key space and seeds
statistical key-recovery attacks (the paper cites Sarkar & Maitra).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.distributions import (
    DistributionSummary,
    count_groups,
    summarize,
)
from repro.analysis.stats import LinearFit, linear_fit
from repro.core.io import TraceArchiveWriter
from repro.core.sampler import HwmonSampler
from repro.core.traces import Trace, TraceSet
from repro.crypto.rsa_math import (
    PAPER_HAMMING_WEIGHTS,
    make_exponent_with_weight,
    random_modulus,
)
from repro.fpga.rsa import RsaCircuit
from repro.soc.soc import Soc
from repro.utils.validation import require_int_in_range, require_positive

#: Channel LSB in hwmon units, for grouping analysis.
GROUP_GAP = {"current": 1.0, "power": 25_000.0}

#: Trace label prefix identifying one test key's Hamming weight.
WEIGHT_LABEL_PREFIX = "hw-"


@dataclass(frozen=True)
class KeyProfile:
    """Readings collected while one key was in use."""

    weight: int
    quantity: str
    values: np.ndarray

    @property
    def summary(self) -> DistributionSummary:
        """Box-plot summary (what Fig 4 draws per key)."""
        return summarize(self.values)


@dataclass(frozen=True)
class WeightSweepResult:
    """Fig 4 for one channel: per-key reading distributions."""

    quantity: str
    profiles: Tuple[KeyProfile, ...]

    @property
    def weights(self) -> np.ndarray:
        """Hamming weights, in sweep order."""
        return np.asarray([profile.weight for profile in self.profiles])

    @property
    def medians(self) -> np.ndarray:
        """Median reading per key."""
        return np.asarray(
            [profile.summary.median for profile in self.profiles]
        )

    def distinguishable_groups(self, min_gap: Optional[float] = None) -> int:
        """How many of the 17 keys stay distinguishable on this channel."""
        if min_gap is None:
            min_gap = GROUP_GAP.get(self.quantity, 1.0)
        return count_groups(self.medians, min_gap)

    def calibration(self) -> LinearFit:
        """Median-vs-weight line: the attacker's decoding curve."""
        return linear_fit(self.weights, self.medians)


def weight_from_label(label: Optional[str]) -> int:
    """Parse the Hamming weight from an archived trace label."""
    if label is None or not label.startswith(WEIGHT_LABEL_PREFIX):
        raise ValueError(
            f"trace label {label!r} does not carry a Hamming weight "
            f"(expected '{WEIGHT_LABEL_PREFIX}<n>')"
        )
    return int(label[len(WEIGHT_LABEL_PREFIX):])


def profile_from_trace(trace: Trace) -> KeyProfile:
    """The per-key reading distribution behind one recorded trace."""
    return KeyProfile(
        weight=weight_from_label(trace.label),
        quantity=trace.quantity,
        values=np.asarray(trace.values, dtype=np.float64),
    )


def sweep_from_traces(
    traces: TraceSet, quantity: Optional[str] = None
) -> WeightSweepResult:
    """Analysis plane: rebuild Fig 4 from recorded key traces.

    ``traces`` may come straight from :meth:`RsaHammingWeightAttack.
    collect_sweep` or from a trace archive; the result is bit-identical
    either way.  ``quantity`` filters a mixed-channel set (e.g. an
    archive holding both the current and power sweeps).
    """
    if quantity is not None:
        traces = traces.filter(quantity=quantity)
    if len(traces) == 0:
        raise ValueError("no traces to analyze (wrong quantity filter?)")
    quantities = {trace.quantity for trace in traces}
    if len(quantities) > 1:
        raise ValueError(
            f"mixed quantities {sorted(quantities)}; pass quantity= to "
            f"select one sweep"
        )
    profiles = tuple(profile_from_trace(trace) for trace in traces)
    return WeightSweepResult(
        quantity=quantities.pop(), profiles=profiles
    )


class RsaHammingWeightAttack:
    """Mounts the Fig 4 experiment on a simulated SoC.

    Args:
        soc: the platform (default: the session's seeded board).
        sampler: the polling loop (default: the session's sampler).
        sampling_hz: poll rate (paper: 1 kHz — far above the 35 ms
            sensor refresh, so readings repeat in runs of ~35).
        seed: keys key construction and the victim's plaintext.
        session: acquisition session superseding ``soc``/``sampler``.
        board: board name when no session/soc is given (Table I
            catalog; default ZCU102).
    """

    def __init__(
        self,
        soc: Optional[Soc] = None,
        sampler: Optional[HwmonSampler] = None,
        sampling_hz: float = 1000.0,
        seed: Optional[int] = 0,
        session=None,
        board=None,
    ):
        from repro.session import resolve_session

        self.session = resolve_session(
            session, soc=soc, sampler=sampler, board=board, seed=seed
        )
        self.sampling_hz = require_positive(sampling_hz, "sampling_hz")
        self.modulus = random_modulus(seed=self.seed)
        self._clock = 1.0

    @property
    def soc(self) -> Soc:
        return self.session.soc

    @property
    def sampler(self) -> HwmonSampler:
        return self.session.sampler

    @property
    def seed(self) -> Optional[int]:
        return self.session.seed

    def make_circuit(self, weight: int) -> RsaCircuit:
        """The victim circuit for one Hamming-weight test key."""
        exponent = make_exponent_with_weight(weight, seed=self.seed)
        return RsaCircuit(exponent, self.modulus)

    def record_key(
        self,
        circuit: RsaCircuit,
        quantity: str = "current",
        n_samples: int = 35_000,
    ) -> Trace:
        """Acquisition plane: one key's polling session as a raw trace.

        The trace label encodes the ground-truth Hamming weight
        (``hw-<n>``), which is what the analysis plane keys on.
        """
        n_samples = require_int_in_range(
            n_samples, 10, 100_000_000, "n_samples"
        )
        start = self._clock
        self._clock += n_samples / self.sampling_hz + 1.0
        self.soc.replace_workload(
            "fpga", "rsa", circuit.timeline(start=start)
        )
        try:
            trace = self.sampler.collect(
                "fpga",
                quantity,
                start=start,
                n_samples=n_samples,
                poll_hz=self.sampling_hz,
                label=f"{WEIGHT_LABEL_PREFIX}{circuit.hamming_weight}",
            )
        finally:
            self.soc.detach_workload("fpga", "rsa")
        return trace

    def profile_key(
        self,
        circuit: RsaCircuit,
        quantity: str = "current",
        n_samples: int = 35_000,
    ) -> KeyProfile:
        """Record ``n_samples`` polls while ``circuit`` loops encryptions."""
        return profile_from_trace(
            self.record_key(circuit, quantity=quantity, n_samples=n_samples)
        )

    def archive_meta(
        self,
        weights: Sequence[int] = PAPER_HAMMING_WEIGHTS,
        quantity: str = "current",
        n_samples: int = 35_000,
    ) -> dict:
        """Manifest metadata describing one sweep recording."""
        return {
            "experiment": "rsa",
            "board": self.soc.board.name,
            "seed": self.seed,
            "sampling_hz": self.sampling_hz,
            "quantity": quantity,
            "n_samples": n_samples,
            "weights": [int(weight) for weight in weights],
        }

    def collect_sweep(
        self,
        weights: Sequence[int] = PAPER_HAMMING_WEIGHTS,
        quantity: str = "current",
        n_samples: int = 35_000,
        sink: Optional[TraceArchiveWriter] = None,
        resume: bool = False,
    ) -> TraceSet:
        """Acquisition plane: record every test key's trace.

        With ``sink`` given each key's trace is appended to the archive
        as soon as its session ends, so the device never holds more
        than one key's readings plus what is already safely on disk;
        each append is followed by a progress checkpoint.

        With ``resume=True`` (sink reopened via ``TraceArchiveWriter(
        ..., resume=True)``), keys the interrupted session persisted
        are loaded back from disk; the sweep continues at the first
        unrecorded key with the experiment clock advanced exactly as
        if those keys had just been recorded, so the sealed archive is
        byte-identical to an uninterrupted sweep's.
        """
        from repro.core.io import read_chunk_entry

        keys_done = 0
        traces = TraceSet()
        if resume:
            if sink is None:
                raise ValueError("resume=True needs a sink archive writer")
            sink.drop_entries_after_checkpoint()
            state = sink.checkpoint_state or {}
            keys_done = int(state.get("keys_done", 0))
            for entry in sink.entries:
                traces.add(read_chunk_entry(sink.path, entry))
        for index, weight in enumerate(weights):
            if index < keys_done:
                # Advance the clock exactly as record_key did for the
                # already-persisted run.
                self._clock += n_samples / self.sampling_hz + 1.0
                continue
            trace = self.record_key(
                self.make_circuit(weight),
                quantity=quantity,
                n_samples=n_samples,
            )
            traces.add(trace)
            if sink is not None:
                sink.append(trace)
                sink.checkpoint(
                    {
                        "experiment": "rsa",
                        "keys_done": index + 1,
                        "weight": int(weight),
                    }
                )
        return traces

    def sweep(
        self,
        weights: Sequence[int] = PAPER_HAMMING_WEIGHTS,
        quantity: str = "current",
        n_samples: int = 35_000,
    ) -> WeightSweepResult:
        """Profile every test key on one channel (one Fig 4 panel)."""
        return sweep_from_traces(
            self.collect_sweep(
                weights=weights, quantity=quantity, n_samples=n_samples
            )
        )

    def infer_weight(
        self, values: np.ndarray, calibration: LinearFit
    ) -> float:
        """Decode an unknown key's Hamming weight from its readings.

        Inverts the calibration line at the observed median; the
        attacker rounds to the nearest plausible weight.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("need at least one reading")
        if calibration.slope == 0:
            raise ValueError("degenerate calibration (zero slope)")
        median = float(np.median(values))
        return (median - calibration.intercept) / calibration.slope

    def end_to_end(
        self,
        true_weight: int,
        calibration: LinearFit,
        n_samples: int = 35_000,
        quantity: str = "current",
    ) -> float:
        """Full online attack on one unknown key; returns the estimate."""
        profile = self.profile_key(
            self.make_circuit(true_weight),
            quantity=quantity,
            n_samples=n_samples,
        )
        return self.infer_weight(profile.values, calibration)
