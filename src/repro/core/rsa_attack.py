"""RSA Hamming-weight inference (paper §IV-C, Fig 4).

The victim is a 100 MHz RSA-1024 square-and-multiply circuit looping
encryptions of a random plaintext; its secret exponent is sealed in
the encrypted bitstream.  The unprivileged attacker polls the FPGA
current file at 1 kHz and records 100 k samples.  Because the multiply
module is active only on 1-bits, the rail's mean power — hence current
— is linear in the exponent's Hamming weight, and the 1 mA current
resolution separates all 17 test keys while the 25 mW power resolution
collapses them into ~5 groups.

Knowing the Hamming weight shrinks the brute-force key space and seeds
statistical key-recovery attacks (the paper cites Sarkar & Maitra).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.distributions import (
    DistributionSummary,
    count_groups,
    summarize,
)
from repro.analysis.stats import LinearFit, linear_fit
from repro.core.sampler import HwmonSampler
from repro.crypto.rsa_math import (
    PAPER_HAMMING_WEIGHTS,
    make_exponent_with_weight,
    random_modulus,
)
from repro.fpga.rsa import RsaCircuit
from repro.soc.soc import Soc
from repro.utils.rng import derive_seed
from repro.utils.validation import require_int_in_range, require_positive

#: Channel LSB in hwmon units, for grouping analysis.
GROUP_GAP = {"current": 1.0, "power": 25_000.0}


@dataclass(frozen=True)
class KeyProfile:
    """Readings collected while one key was in use."""

    weight: int
    quantity: str
    values: np.ndarray

    @property
    def summary(self) -> DistributionSummary:
        """Box-plot summary (what Fig 4 draws per key)."""
        return summarize(self.values)


@dataclass(frozen=True)
class WeightSweepResult:
    """Fig 4 for one channel: per-key reading distributions."""

    quantity: str
    profiles: Tuple[KeyProfile, ...]

    @property
    def weights(self) -> np.ndarray:
        """Hamming weights, in sweep order."""
        return np.asarray([profile.weight for profile in self.profiles])

    @property
    def medians(self) -> np.ndarray:
        """Median reading per key."""
        return np.asarray(
            [profile.summary.median for profile in self.profiles]
        )

    def distinguishable_groups(self, min_gap: Optional[float] = None) -> int:
        """How many of the 17 keys stay distinguishable on this channel."""
        if min_gap is None:
            min_gap = GROUP_GAP.get(self.quantity, 1.0)
        return count_groups(self.medians, min_gap)

    def calibration(self) -> LinearFit:
        """Median-vs-weight line: the attacker's decoding curve."""
        return linear_fit(self.weights, self.medians)


class RsaHammingWeightAttack:
    """Mounts the Fig 4 experiment on a simulated SoC.

    Args:
        soc: the platform (default: seeded ZCU102).
        sampler: the polling loop (default: fresh unprivileged sampler).
        sampling_hz: poll rate (paper: 1 kHz — far above the 35 ms
            sensor refresh, so readings repeat in runs of ~35).
        seed: keys key construction and the victim's plaintext.
    """

    def __init__(
        self,
        soc: Optional[Soc] = None,
        sampler: Optional[HwmonSampler] = None,
        sampling_hz: float = 1000.0,
        seed: Optional[int] = 0,
    ):
        self.soc = soc if soc is not None else Soc("ZCU102", seed=seed)
        self.sampler = (
            sampler
            if sampler is not None
            else HwmonSampler(self.soc, seed=seed)
        )
        self.sampling_hz = require_positive(sampling_hz, "sampling_hz")
        self.seed = seed
        self.modulus = random_modulus(seed=seed)
        self._clock = 1.0

    def make_circuit(self, weight: int) -> RsaCircuit:
        """The victim circuit for one Hamming-weight test key."""
        exponent = make_exponent_with_weight(weight, seed=self.seed)
        return RsaCircuit(exponent, self.modulus)

    def profile_key(
        self,
        circuit: RsaCircuit,
        quantity: str = "current",
        n_samples: int = 35_000,
    ) -> KeyProfile:
        """Record ``n_samples`` polls while ``circuit`` loops encryptions."""
        n_samples = require_int_in_range(
            n_samples, 10, 100_000_000, "n_samples"
        )
        start = self._clock
        self._clock += n_samples / self.sampling_hz + 1.0
        self.soc.replace_workload(
            "fpga", "rsa", circuit.timeline(start=start)
        )
        trace = self.sampler.collect(
            "fpga",
            quantity,
            start=start,
            n_samples=n_samples,
            poll_hz=self.sampling_hz,
            label=f"hw-{circuit.hamming_weight}",
        )
        self.soc.detach_workload("fpga", "rsa")
        return KeyProfile(
            weight=circuit.hamming_weight,
            quantity=quantity,
            values=np.asarray(trace.values, dtype=np.float64),
        )

    def sweep(
        self,
        weights: Sequence[int] = PAPER_HAMMING_WEIGHTS,
        quantity: str = "current",
        n_samples: int = 35_000,
    ) -> WeightSweepResult:
        """Profile every test key on one channel (one Fig 4 panel)."""
        profiles = tuple(
            self.profile_key(
                self.make_circuit(weight),
                quantity=quantity,
                n_samples=n_samples,
            )
            for weight in weights
        )
        return WeightSweepResult(quantity=quantity, profiles=profiles)

    def infer_weight(
        self, values: np.ndarray, calibration: LinearFit
    ) -> float:
        """Decode an unknown key's Hamming weight from its readings.

        Inverts the calibration line at the observed median; the
        attacker rounds to the nearest plausible weight.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("need at least one reading")
        if calibration.slope == 0:
            raise ValueError("degenerate calibration (zero slope)")
        median = float(np.median(values))
        return (median - calibration.intercept) / calibration.slope

    def end_to_end(
        self,
        true_weight: int,
        calibration: LinearFit,
        n_samples: int = 35_000,
        quantity: str = "current",
    ) -> float:
        """Full online attack on one unknown key; returns the estimate."""
        profile = self.profile_key(
            self.make_circuit(true_weight),
            quantity=quantity,
            n_samples=n_samples,
        )
        return self.infer_weight(profile.values, calibration)
