"""Attacker-side sensor calibration: learn the sensor's clock.

The attacker cannot read the INA226's configuration (and could not
change it anyway without root), but sampling *efficiently* requires
knowing the update interval — polling faster wastes syscalls on cached
values, polling slower wastes fresh conversions.  Both the interval
and the conversion phase are recoverable from the readings themselves:
poll fast, record *when the value changes*, and the change times sit
on the sensor's latch grid.

This is a practical recon step (the campaign can run it right after
sensor discovery) and doubles as a verification tool: the estimate
must land on the 35 ms the ZCU102's hwmon reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.sampler import HwmonSampler
from repro.utils.validation import require_int_in_range, require_positive


@dataclass(frozen=True)
class SensorClockEstimate:
    """Recovered sensor timing parameters.

    Attributes:
        update_interval: estimated seconds between register refreshes.
        phase: estimated offset of the refresh grid within one
            interval (relative to the sampling session's clock).
        n_transitions: value changes observed (estimate quality).
        jitter: RMS deviation of observed change times from the fitted
            grid, in seconds (sanity measure: should be below the poll
            spacing).
    """

    update_interval: float
    phase: float
    n_transitions: int
    jitter: float

    @property
    def update_interval_ms(self) -> float:
        """The interval in milliseconds (hwmon's reporting unit)."""
        return self.update_interval * 1e3


def estimate_sensor_clock(
    times: np.ndarray, values: np.ndarray
) -> SensorClockEstimate:
    """Recover the latch grid from an oversampled trace.

    ``times``/``values`` must come from polling *faster* than the
    sensor updates (several polls per interval), so most changes in
    the value stream mark latch boundaries.  Occasional unchanged
    conversions (identical consecutive readings) merely skip a grid
    point; the estimator uses the median of *grid-normalized* change
    spacings, which is robust to such gaps.
    """
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values)
    if times.shape != values.shape or times.ndim != 1:
        raise ValueError("times and values must be equal-length 1-D arrays")
    if times.size < 16:
        raise ValueError("need at least 16 samples to calibrate")
    changed = np.nonzero(values[1:] != values[:-1])[0] + 1
    if changed.size < 3:
        raise ValueError(
            "too few value transitions; poll longer or faster"
        )
    change_times = times[changed]
    spacings = np.diff(change_times)
    spacings = spacings[spacings > 0]
    if spacings.size < 2:
        raise ValueError("degenerate transition spacing")
    # Every spacing is k * T for integer k >= 1 (unchanged conversions
    # skip grid points), so the smallest spacing anchors the grid;
    # one refinement pass then averages over all spacings.
    base = float(spacings.min())
    for _ in range(2):
        multiples = np.maximum(1, np.rint(spacings / base))
        base = float(np.mean(spacings / multiples))
    interval = base
    # Phase: change times modulo the interval cluster at the latch
    # offset; use the circular mean for wrap robustness.
    angles = 2 * np.pi * ((change_times % interval) / interval)
    mean_angle = np.arctan2(np.sin(angles).mean(), np.cos(angles).mean())
    phase = (mean_angle / (2 * np.pi)) % 1.0 * interval
    residuals = ((change_times - phase) % interval)
    residuals = np.minimum(residuals, interval - residuals)
    return SensorClockEstimate(
        update_interval=interval,
        phase=float(phase),
        n_transitions=int(changed.size),
        jitter=float(np.sqrt(np.mean(residuals**2))),
    )


def calibrate_channel(
    sampler: HwmonSampler,
    domain: str = "fpga",
    quantity: str = "current",
    start: float = 0.0,
    n_samples: int = 3000,
    poll_hz: Optional[float] = None,
) -> SensorClockEstimate:
    """Run the calibration against a live channel.

    Polls at ~8x the worst-case update rate by default (the paper's
    boards update no faster than 2 ms, so 4 kHz covers everything an
    unprivileged attacker will meet).
    """
    require_int_in_range(n_samples, 64, 100_000_000, "n_samples")
    if poll_hz is None:
        poll_hz = 4000.0
    require_positive(poll_hz, "poll_hz")
    trace = sampler.collect(
        domain, quantity, start=start, n_samples=n_samples, poll_hz=poll_hz
    )
    return estimate_sensor_clock(trace.times, trace.values)
