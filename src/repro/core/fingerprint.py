"""DNN model fingerprinting on the DPU (paper §IV-B, Fig 3, Table III).

Two phases, as in the paper:

* **Offline preparation** — for every victim architecture, trigger
  serving runs on the (encrypted) DPU and record hwmon traces from
  each sensor channel; train one random-forest classifier per channel.
* **Online classification** — record a trace of the black-box victim
  through the same channel and ask the matching classifier which of
  the 39 architectures produced it.

The evaluation protocol is 10-fold cross-validation over the labeled
trace sets, scored as top-1/top-5 accuracy for each channel and each
trace duration (1 s .. 5 s), which regenerates Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.sampler import HwmonSampler
from repro.core.traces import Trace, TraceSet
from repro.dpu.models import ModelSpec, build_model, list_models
from repro.dpu.runner import DpuRunner
from repro.ml.forest import RandomForestClassifier
from repro.ml.validation import CrossValidationResult, cross_validate
from repro.soc.soc import Soc
from repro.utils.rng import derive_seed

#: The six Table III channels: (domain, quantity).
TABLE3_CHANNELS: Tuple[Tuple[str, str], ...] = (
    ("fpd", "current"),
    ("lpd", "current"),
    ("ddr", "current"),
    ("fpga", "current"),
    ("fpga", "voltage"),
    ("fpga", "power"),
)

#: Table III's duration columns in seconds.
TABLE3_DURATIONS: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0)


@dataclass(frozen=True)
class FingerprintConfig:
    """Knobs of the fingerprinting experiment.

    Attributes:
        duration: full trace length in seconds (paper: 5 s per model).
        traces_per_model: recordings per architecture in the offline
            set.
        n_features: resampled feature width fed to the forest (a 5 s
            trace at the 35.2 ms update interval holds ~142 readings).
        n_folds: cross-validation folds (paper: 10).
        forest_trees: trees per forest (paper: 100).
        forest_depth: maximum tree depth (paper: 32).
    """

    duration: float = 5.0
    traces_per_model: int = 20
    n_features: int = 140
    n_folds: int = 10
    forest_trees: int = 100
    forest_depth: int = 32

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.traces_per_model < self.n_folds // 5 + 1:
            # Each class must appear in multiple folds for stratified CV.
            pass
        if self.traces_per_model < 2:
            raise ValueError("need at least two traces per model")


#: A faster-but-faithful configuration for CI-style runs: fewer trees
#: and folds (the accuracies are stable well below the paper's 100/10).
FAST_CONFIG = FingerprintConfig(
    traces_per_model=10, n_folds=5, forest_trees=30
)


class DnnFingerprinter:
    """Mounts the fingerprinting attack end to end on a simulated SoC."""

    def __init__(
        self,
        soc: Optional[Soc] = None,
        runner: Optional[DpuRunner] = None,
        sampler: Optional[HwmonSampler] = None,
        config: FingerprintConfig = None,
        seed: Optional[int] = 0,
    ):
        self.soc = soc if soc is not None else Soc("ZCU102", seed=seed)
        self.runner = runner if runner is not None else DpuRunner()
        self.sampler = (
            sampler
            if sampler is not None
            else HwmonSampler(self.soc, seed=seed)
        )
        self.config = config if config is not None else FingerprintConfig()
        self.seed = seed
        self._clock = 1.0  # virtual experiment time, advanced per run

    # ---------------------------------------------------- collection

    def _next_window(self) -> float:
        """Reserve a fresh time window for one victim run."""
        start = self._clock
        guard = 4 * self.soc.device("fpga").update_period
        self._clock += self.config.duration + 0.3 + guard
        return start

    def record_run(
        self,
        model: ModelSpec,
        channels: Sequence[Tuple[str, str]] = TABLE3_CHANNELS,
        run_index: int = 0,
    ) -> Dict[Tuple[str, str], Trace]:
        """Run one victim serving session and record every channel.

        The victim runs once; all requested sensors observe the same
        physical window (they are independent INA226 devices polling
        the same activity), exactly as concurrent sampling threads on
        the real board would see it.
        """
        start = self._next_window()
        run_seed = derive_seed(self.seed, f"run-{model.name}-{run_index}")
        self.runner.deploy(
            self.soc,
            model,
            duration=self.config.duration + 0.3,
            seed=run_seed,
            start=start,
        )
        traces: Dict[Tuple[str, str], Trace] = {}
        for domain, quantity in channels:
            traces[(domain, quantity)] = self.sampler.collect(
                domain,
                quantity,
                start=start,
                duration=self.config.duration,
                label=model.name,
            )
        self.runner.undeploy(self.soc)
        return traces

    def collect_datasets(
        self,
        models: Optional[Iterable[str]] = None,
        channels: Sequence[Tuple[str, str]] = TABLE3_CHANNELS,
        traces_per_model: Optional[int] = None,
    ) -> Dict[Tuple[str, str], TraceSet]:
        """Offline phase: labeled trace sets for every channel."""
        if models is None:
            models = list_models()
        if traces_per_model is None:
            traces_per_model = self.config.traces_per_model
        datasets: Dict[Tuple[str, str], TraceSet] = {
            channel: TraceSet() for channel in channels
        }
        for name in models:
            model = build_model(name)
            for repetition in range(traces_per_model):
                run = self.record_run(
                    model, channels=channels, run_index=repetition
                )
                for channel, trace in run.items():
                    datasets[channel].add(trace)
        return datasets

    # ---------------------------------------------------- evaluation

    def _forest_factory(self):
        fit_seed = derive_seed(self.seed, "forest")

        def factory():
            return RandomForestClassifier(
                n_estimators=self.config.forest_trees,
                max_depth=self.config.forest_depth,
                seed=fit_seed,
            )

        return factory

    def evaluate_channel(
        self,
        dataset: TraceSet,
        duration: Optional[float] = None,
    ) -> CrossValidationResult:
        """Cross-validate one channel's dataset at one trace duration."""
        if duration is not None:
            dataset = dataset.truncated(duration)
            fraction = duration / self.config.duration
        else:
            fraction = 1.0
        n_features = max(4, int(self.config.n_features * fraction))
        X, y = dataset.to_matrix(n_features)
        return cross_validate(
            X,
            y,
            n_folds=self.config.n_folds,
            classifier_factory=self._forest_factory(),
            seed=derive_seed(self.seed, "cv"),
        )

    def evaluate_table3(
        self,
        datasets: Dict[Tuple[str, str], TraceSet],
        durations: Sequence[float] = TABLE3_DURATIONS,
    ) -> Dict[Tuple[str, str, float], CrossValidationResult]:
        """The full Table III grid: channels x durations."""
        results: Dict[Tuple[str, str, float], CrossValidationResult] = {}
        for channel, dataset in datasets.items():
            domain, quantity = channel
            for duration in durations:
                results[(domain, quantity, duration)] = (
                    self.evaluate_channel(dataset, duration=duration)
                )
        return results

    def evaluate_fused(
        self,
        datasets: Dict[Tuple[str, str], TraceSet],
        channels: Sequence[Tuple[str, str]] = None,
        duration: Optional[float] = None,
    ) -> CrossValidationResult:
        """Fuse several channels into one feature vector and evaluate.

        An attacker is not limited to one sysfs file: the four current
        sensors can be polled concurrently and their traces
        concatenated.  Fusion is our extension beyond Table III —
        it should never do worse than the best single channel by much,
        and typically recovers mistakes single channels make.
        """
        if channels is None:
            channels = [c for c in datasets if c[1] == "current"]
        if not channels:
            raise ValueError("need at least one channel to fuse")
        per_channel = []
        labels = None
        fraction = 1.0
        if duration is not None:
            fraction = duration / self.config.duration
        n_features = max(4, int(self.config.n_features * fraction))
        for channel in channels:
            dataset = datasets[channel]
            if duration is not None:
                dataset = dataset.truncated(duration)
            X, y = dataset.to_matrix(n_features)
            per_channel.append(X)
            if labels is None:
                labels = y
            elif not np.array_equal(labels, y):
                raise ValueError(
                    "channels carry differently-ordered labels; collect "
                    "them from the same runs (record_run does this)"
                )
        fused = np.hstack(per_channel)
        return cross_validate(
            fused,
            labels,
            n_folds=self.config.n_folds,
            classifier_factory=self._forest_factory(),
            seed=derive_seed(self.seed, "cv-fused"),
        )

    # ------------------------------------------- online classification

    def train(self, dataset: TraceSet) -> RandomForestClassifier:
        """Offline phase: fit one channel's classifier on all traces."""
        X, y = dataset.to_matrix(self.config.n_features)
        forest = self._forest_factory()()
        forest.fit(X, y)
        return forest

    def classify(
        self, classifier: RandomForestClassifier, trace: Trace
    ) -> str:
        """Online phase: name the architecture behind one new trace."""
        from repro.core.features import resample_values

        features = resample_values(
            trace.values, self.config.n_features
        )[np.newaxis, :]
        return str(classifier.predict(features)[0])

    def classify_topk(
        self, classifier: RandomForestClassifier, trace: Trace, k: int = 5
    ) -> List[str]:
        """Online phase, top-k candidates (Table III's second rows)."""
        from repro.core.features import resample_values

        features = resample_values(
            trace.values, self.config.n_features
        )[np.newaxis, :]
        return [str(name) for name in classifier.predict_topk(features, k)[0]]
