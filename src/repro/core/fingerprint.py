"""DNN model fingerprinting on the DPU (paper §IV-B, Fig 3, Table III).

Two phases, as in the paper — and two *planes* in this library:

* **Acquisition plane** (:class:`DnnFingerprinter`) — for every victim
  architecture, trigger serving runs on the (encrypted) DPU and record
  hwmon traces from each sensor channel, optionally streaming them to
  a trace archive as they are captured.
* **Analysis plane** (:class:`FingerprintAnalyzer`) — train one
  random-forest classifier per channel and run the evaluation grids.
  The analyzer never touches a SoC: it consumes labeled
  :class:`~repro.core.traces.TraceSet`s from memory or from a trace
  archive on disk, so the heavy work can run on a different machine
  than the recording (the paper's collect-once / analyze-anywhere
  workflow).

The evaluation protocol is 10-fold cross-validation over the labeled
trace sets, scored as top-1/top-5 accuracy for each channel and each
trace duration (1 s .. 5 s), which regenerates Table III.  A recorded
archive replayed through the analyzer reproduces the in-process
accuracies bit-exactly.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.io import (
    TraceArchiveReader,
    TraceArchiveWriter,
    read_chunk_entry,
)
from repro.core.sampler import HwmonSampler
from repro.core.traces import Trace, TraceSet
from repro.dpu.models import ModelSpec, build_model, list_models
from repro.dpu.runner import DpuRunner
from repro.ml.forest import RandomForestClassifier
from repro.ml.validation import (
    CrossValidationResult,
    collect_cv_result,
    cross_validate,
    make_fold_jobs,
    score_fold,
    share_fold_jobs,
)
from repro.perf.config import resolve_workers
from repro.perf.executor import in_worker, parallel_map
from repro.perf.shm import publish_arrays, resolve_array
from repro.soc.soc import Soc
from repro.utils.rng import derive_seed

#: The six Table III channels: (domain, quantity).
TABLE3_CHANNELS: Tuple[Tuple[str, str], ...] = (
    ("fpd", "current"),
    ("lpd", "current"),
    ("ddr", "current"),
    ("fpga", "current"),
    ("fpga", "voltage"),
    ("fpga", "power"),
)

#: Table III's duration columns in seconds.
TABLE3_DURATIONS: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0)


def _fit_classifier_job(job):
    """Pool task: fit one channel's classifier on its full dataset.

    ``X``/``y`` may be arrays or shared-memory descriptors
    (:func:`repro.perf.shm.publish_arrays` on the fan-out side);
    either way the fit sees the same values.
    """
    classifier, x_ref, y_ref = job
    classifier.fit(resolve_array(x_ref), resolve_array(y_ref))
    return classifier


@dataclass(frozen=True)
class FingerprintConfig:
    """Knobs of the fingerprinting experiment.

    Attributes:
        duration: full trace length in seconds (paper: 5 s per model).
        traces_per_model: recordings per architecture in the offline
            set.
        n_features: resampled feature width fed to the forest (a 5 s
            trace at the 35.2 ms update interval holds ~142 readings).
        n_folds: cross-validation folds (paper: 10).
        forest_trees: trees per forest (paper: 100).
        forest_depth: maximum tree depth (paper: 32).
    """

    duration: float = 5.0
    traces_per_model: int = 20
    n_features: int = 140
    n_folds: int = 10
    forest_trees: int = 100
    forest_depth: int = 32

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.traces_per_model < 2:
            raise ValueError("need at least two traces per model")

    def to_dict(self) -> Dict[str, Union[int, float]]:
        """JSON-safe form for archive manifests."""
        return {
            "duration": self.duration,
            "traces_per_model": self.traces_per_model,
            "n_features": self.n_features,
            "n_folds": self.n_folds,
            "forest_trees": self.forest_trees,
            "forest_depth": self.forest_depth,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FingerprintConfig":
        """Rebuild a config stored by :meth:`to_dict`."""
        known = {
            key: data[key] for key in cls.__dataclass_fields__ if key in data
        }
        return cls(**known)


#: A faster-but-faithful configuration for CI-style runs: fewer trees
#: and folds (the accuracies are stable well below the paper's 100/10).
FAST_CONFIG = FingerprintConfig(
    traces_per_model=10, n_folds=5, forest_trees=30
)


class FingerprintAnalyzer:
    """The offline half of the attack: training and evaluation only.

    Consumes labeled trace sets — from a live collection or from a
    trace archive — and runs forests/CV over them.  Never constructs a
    SoC, so it runs on the attacker's analysis machine with nothing
    but the archived dataset.

    Args:
        config: experiment knobs (must match the recording for Table
            III geometry; :meth:`from_archive` restores them from the
            manifest).
        seed: keys forest fitting and CV splits; the same seed as the
            recording session reproduces in-process accuracies
            bit-exactly.
        workers: default worker count for the evaluation stages
            (``None`` honors ``AMPEREBLEED_WORKERS``, falling back to
            serial; per-call ``workers=`` arguments override it).  The
            engine is deterministic: every worker count produces the
            same accuracies.
    """

    def __init__(
        self,
        config: Optional[FingerprintConfig] = None,
        seed: Optional[int] = 0,
        workers: Optional[int] = None,
    ):
        self.config = config if config is not None else FingerprintConfig()
        self.seed = seed
        self.workers = workers
        # (dataset id, duration, width) -> (dataset ref, X, y); the
        # strong dataset reference keeps the id() key from being
        # recycled while the entry lives.
        self._feature_cache: Dict[Tuple, Tuple] = {}

    @classmethod
    def from_archive(
        cls,
        archive: Union[str, Path, TraceArchiveReader],
        workers: Optional[int] = None,
        config: Optional[FingerprintConfig] = None,
        seed: Optional[int] = None,
        mmap: bool = True,
    ) -> Tuple["FingerprintAnalyzer", Dict[Tuple[str, str], TraceSet]]:
        """Open a recorded dataset and the analyzer that evaluates it.

        The archive manifest carries the recording's fingerprint
        configuration and seed; explicit ``config``/``seed`` arguments
        override them (e.g. to re-evaluate one dataset under many
        analysis settings — train-many-from-one-dataset).

        Trace arrays are memory-mapped off disk by default (zero-copy
        views; see :class:`~repro.core.io.TraceArchiveReader`) instead
        of materializing the whole archive; ``mmap=False`` restores
        resident loads, and an already-open reader keeps its own
        setting.

        Returns ``(analyzer, datasets)`` with datasets keyed by
        ``(domain, quantity)``.
        """
        if not isinstance(archive, TraceArchiveReader):
            archive = TraceArchiveReader(archive, mmap=mmap)
        meta = archive.meta
        if config is None and "config" in meta:
            config = FingerprintConfig.from_dict(meta["config"])
        if seed is None:
            seed = meta.get("seed", 0)
        analyzer = cls(config=config, seed=seed, workers=workers)
        return analyzer, archive.load_datasets()

    def _workers(self, workers: Optional[int]) -> Optional[int]:
        return self.workers if workers is None else workers

    def _forest_factory(self):
        fit_seed = derive_seed(self.seed, "forest")

        def factory():
            return RandomForestClassifier(
                n_estimators=self.config.forest_trees,
                max_depth=self.config.forest_depth,
                seed=fit_seed,
            )

        return factory

    #: Entries kept in the feature-extraction cache before eviction.
    _FEATURE_CACHE_LIMIT = 128

    def _feature_width(self, duration: Optional[float]) -> int:
        fraction = (
            1.0 if duration is None else duration / self.config.duration
        )
        return max(4, int(self.config.n_features * fraction))

    def _features(
        self, dataset: TraceSet, duration: Optional[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Feature matrix + labels, cached per (dataset, duration).

        The CV grid asks for the same (dataset, duration) matrix once
        per fold batch, fusion once more, and repeated evaluations yet
        again; extraction (truncate + resample every trace) is pure,
        so it is computed once and cached.
        """
        n_features = self._feature_width(duration)
        key = (
            id(dataset),
            None if duration is None else round(float(duration), 9),
            n_features,
        )
        cached = self._feature_cache.get(key)
        if cached is not None and cached[0] is dataset:
            return cached[1], cached[2]
        # Truncation and resampling happen inside the batched
        # dataset→matrix kernel; no per-duration TraceSet copies.
        X, y = dataset.to_matrix(n_features, duration=duration)
        if len(self._feature_cache) >= self._FEATURE_CACHE_LIMIT:
            self._feature_cache.clear()
        self._feature_cache[key] = (dataset, X, y)
        return X, y

    def evaluate_channel(
        self,
        dataset: TraceSet,
        duration: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> CrossValidationResult:
        """Cross-validate one channel's dataset at one trace duration."""
        X, y = self._features(dataset, duration)
        return cross_validate(
            X,
            y,
            n_folds=self.config.n_folds,
            classifier_factory=self._forest_factory(),
            seed=derive_seed(self.seed, "cv"),
            workers=self._workers(workers),
        )

    def evaluate_table3(
        self,
        datasets: Dict[Tuple[str, str], TraceSet],
        durations: Sequence[float] = TABLE3_DURATIONS,
        workers: Optional[int] = None,
    ) -> Dict[Tuple[str, str, float], CrossValidationResult]:
        """The full Table III grid: channels x durations.

        Every cell's CV folds are flattened into one task list and
        fanned out together, so workers stay busy across cell
        boundaries; the scores per cell are exactly what
        :meth:`evaluate_channel` computes serially.
        """
        jobs = []
        spans: List[Tuple[Tuple[str, str, float], int, int]] = []
        cv_seed = derive_seed(self.seed, "cv")
        for channel, dataset in datasets.items():
            domain, quantity = channel
            for duration in durations:
                X, y = self._features(dataset, duration)
                cell_jobs = make_fold_jobs(
                    X,
                    y,
                    n_folds=self.config.n_folds,
                    classifier_factory=self._forest_factory(),
                    seed=cv_seed,
                )
                spans.append(
                    ((domain, quantity, duration), len(jobs), len(cell_jobs))
                )
                jobs.extend(cell_jobs)
        # Each cell's feature matrix goes into shared memory once and
        # its ten folds carry descriptors — the grid-wide fan-out no
        # longer pickles a matrix copy per fold.  Serial runs skip the
        # publish (descriptors would just resolve locally).
        fan_out = (
            resolve_workers(self._workers(workers)) > 1
            and len(jobs) > 1
            and not in_worker()
        )
        with ExitStack() as stack:
            scores = parallel_map(
                score_fold,
                share_fold_jobs(jobs, stack, enabled=fan_out),
                workers=self._workers(workers),
            )
        return {
            cell: collect_cv_result(scores[first:first + count])
            for cell, first, count in spans
        }

    def evaluate_fused(
        self,
        datasets: Dict[Tuple[str, str], TraceSet],
        channels: Sequence[Tuple[str, str]] = None,
        duration: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> CrossValidationResult:
        """Fuse several channels into one feature vector and evaluate.

        An attacker is not limited to one sysfs file: the four current
        sensors can be polled concurrently and their traces
        concatenated.  Fusion is our extension beyond Table III —
        it should never do worse than the best single channel by much,
        and typically recovers mistakes single channels make.
        """
        if channels is None:
            channels = [c for c in datasets if c[1] == "current"]
        if not channels:
            raise ValueError("need at least one channel to fuse")
        per_channel = []
        labels = None
        for channel in channels:
            X, y = self._features(datasets[channel], duration)
            per_channel.append(X)
            if labels is None:
                labels = y
            elif not np.array_equal(labels, y):
                raise ValueError(
                    "channels carry differently-ordered labels; collect "
                    "them from the same runs (record_run does this)"
                )
        fused = np.hstack(per_channel)
        return cross_validate(
            fused,
            labels,
            n_folds=self.config.n_folds,
            classifier_factory=self._forest_factory(),
            seed=derive_seed(self.seed, "cv-fused"),
            workers=self._workers(workers),
        )

    def evaluate_fused_degraded(
        self,
        datasets: Dict[Tuple[str, str], TraceSet],
        channels: Sequence[Tuple[str, str]] = None,
        duration: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> Dict:
        """Fusion that tolerates channels lost to dead sensors.

        Degraded-mode recording (``on_dead="drop"``) can leave the
        dataset without some requested channels; this wrapper fuses
        whatever survived and reports exactly what was dropped.

        Returns a dict with ``result`` (the fused
        :class:`~repro.ml.validation.CrossValidationResult`),
        ``used_channels`` and ``dropped_channels``.
        """
        if channels is None:
            channels = [c for c in datasets if c[1] == "current"]
        channels = [tuple(channel) for channel in channels]
        used = [
            channel
            for channel in channels
            if channel in datasets and len(datasets[channel]) > 0
        ]
        dropped = [channel for channel in channels if channel not in used]
        if not used:
            raise ValueError(
                f"no fusable channels left: all of {channels} were dropped"
            )
        result = self.evaluate_fused(
            datasets, channels=used, duration=duration, workers=workers
        )
        return {
            "result": result,
            "used_channels": used,
            "dropped_channels": dropped,
        }

    # ------------------------------------------- online classification

    def train(self, dataset: TraceSet) -> RandomForestClassifier:
        """Offline phase: fit one channel's classifier on all traces."""
        X, y = self._features(dataset, None)
        forest = self._forest_factory()()
        forest.fit(X, y)
        return forest

    def train_all(
        self,
        datasets: Dict[Tuple[str, str], TraceSet],
        workers: Optional[int] = None,
    ) -> Dict[Tuple[str, str], RandomForestClassifier]:
        """Offline phase for every channel, fanned out over workers.

        Equivalent to ``{channel: self.train(dataset) for ...}`` — the
        per-channel forests are identical at any worker count.
        """
        channels = list(datasets)
        fan_out = (
            resolve_workers(self._workers(workers)) > 1
            and len(channels) > 1
            and not in_worker()
        )
        with ExitStack() as stack:
            jobs = []
            for channel in channels:
                X, y = self._features(datasets[channel], None)
                x_ref, y_ref = stack.enter_context(
                    publish_arrays([X, y], enabled=fan_out)
                )
                jobs.append((self._forest_factory()(), x_ref, y_ref))
            fitted = parallel_map(
                _fit_classifier_job, jobs, workers=self._workers(workers)
            )
        return dict(zip(channels, fitted))

    def classify(
        self, classifier: RandomForestClassifier, trace: Trace
    ) -> str:
        """Online phase: name the architecture behind one new trace."""
        from repro.core.streaming import window_feature_matrix

        features = window_feature_matrix(
            [trace.values], self.config.n_features
        )
        return str(classifier.predict(features)[0])

    def classify_topk(
        self, classifier: RandomForestClassifier, trace: Trace, k: int = 5
    ) -> List[str]:
        """Online phase, top-k candidates (Table III's second rows)."""
        from repro.core.streaming import window_feature_matrix

        features = window_feature_matrix(
            [trace.values], self.config.n_features
        )
        return [str(name) for name in classifier.predict_topk(features, k)[0]]

    def classify_stream(
        self,
        classifier,
        chunks: Iterable[Trace],
        window_samples: int,
        hop_samples: Optional[int] = None,
        *,
        top_k: int = 5,
        smoothing: float = 1.0,
        detector=None,
    ):
        """Live counterpart of :meth:`classify`: verdicts per window.

        Runs a pretrained classifier (the forest, or any model with
        ``classes_``/``predict_proba``) over a chunk stream through a
        :class:`~repro.core.streaming.StreamingAnalyzer`, yielding one
        :class:`~repro.core.streaming.MonitorUpdate` per chunk plus a
        final flush.  With ``window_samples`` equal to a full trace
        length and ``smoothing=1.0``, the top-k labels of each verdict
        are bit-identical to :meth:`classify_topk` on the assembled
        trace — the parity the streaming test suite pins.
        """
        from repro.core.streaming import (
            StreamingAnalyzer,
            WindowSpec,
            monitor_chunks,
        )

        analyzer = StreamingAnalyzer(
            classifier,
            WindowSpec(
                window_samples,
                window_samples if hop_samples is None else hop_samples,
            ),
            self.config.n_features,
            top_k=top_k,
            smoothing=smoothing,
            detector=detector,
        )
        return monitor_chunks(analyzer, chunks)


class DnnFingerprinter:
    """Mounts the fingerprinting attack end to end on one session.

    Owns the acquisition plane (victim serving runs + trace recording
    on an :class:`~repro.session.AttackSession`) and delegates every
    evaluation call to an embedded :class:`FingerprintAnalyzer`, so
    the in-process workflow keeps its one-object API while the
    two-machine workflow records with this class and analyzes with the
    analyzer alone.

    Args:
        soc / runner / sampler / config / seed: as before; ``session``
            supersedes ``soc``/``sampler`` (they remain for
            compatibility and must belong to the session if both are
            given).
        workers: default worker count for the evaluation stages.
    """

    def __init__(
        self,
        soc: Optional[Soc] = None,
        runner: Optional[DpuRunner] = None,
        sampler: Optional[HwmonSampler] = None,
        config: FingerprintConfig = None,
        seed: Optional[int] = 0,
        workers: Optional[int] = None,
        session=None,
        board=None,
    ):
        from repro.session import resolve_session

        self.session = resolve_session(
            session, soc=soc, sampler=sampler, board=board, seed=seed
        )
        self.runner = runner if runner is not None else DpuRunner()
        self.analyzer = FingerprintAnalyzer(
            config=config, seed=self.session.seed, workers=workers
        )
        self._clock = 1.0  # virtual experiment time, advanced per run
        self._clock_lock = threading.Lock()
        self._run_lock = threading.Lock()

    # Acquisition state lives on the session; analysis knobs on the
    # analyzer.  These properties keep the original one-object API.

    @property
    def soc(self) -> Soc:
        return self.session.soc

    @property
    def sampler(self) -> HwmonSampler:
        return self.session.sampler

    @property
    def seed(self) -> Optional[int]:
        return self.session.seed

    @property
    def config(self) -> FingerprintConfig:
        return self.analyzer.config

    @property
    def workers(self) -> Optional[int]:
        return self.analyzer.workers

    # ---------------------------------------------------- collection

    def _next_window(self) -> float:
        """Reserve a fresh time window for one victim run.

        Atomic: concurrent ``record_run`` callers always receive
        disjoint windows.
        """
        with self._clock_lock:
            start = self._clock
            guard = 4 * self.soc.device("fpga").update_period
            self._clock += self.config.duration + 0.3 + guard
            return start

    def record_run(
        self,
        model: ModelSpec,
        channels: Sequence[Tuple[str, str]] = TABLE3_CHANNELS,
        run_index: int = 0,
        on_dead: str = "raise",
    ) -> Dict[Tuple[str, str], Trace]:
        """Run one victim serving session and record every channel.

        The victim runs once; all requested sensors observe the same
        physical window (they are independent INA226 devices polling
        the same activity), exactly as concurrent sampling threads on
        the real board would see it.  The channels are recorded through
        the batched acquisition path: one conversion pass per physical
        sensor instead of one per channel.

        ``on_dead="drop"`` enables degraded-mode recording under fault
        injection: channels whose sensor is dead (or suffers a total
        outage) are omitted from the result instead of failing the
        whole run.
        """
        start = self._next_window()
        run_seed = derive_seed(self.seed, f"run-{model.name}-{run_index}")
        # Deploy/sample/undeploy share the SoC's rail state; serialize
        # them so concurrent record_run calls cannot interleave
        # another victim's workload into this run's window.
        with self._run_lock:
            self.runner.deploy(
                self.soc,
                model,
                duration=self.config.duration + 0.3,
                seed=run_seed,
                start=start,
            )
            try:
                traces = self.sampler.collect_many(
                    channels,
                    start=start,
                    duration=self.config.duration,
                    label=model.name,
                    on_dead=on_dead,
                )
            finally:
                self.runner.undeploy(self.soc)
        return traces

    def archive_meta(
        self,
        models: Sequence[str],
        channels: Sequence[Tuple[str, str]] = TABLE3_CHANNELS,
    ) -> Dict:
        """Manifest metadata describing one recording session."""
        return {
            "experiment": "fingerprint",
            "board": self.soc.board.name,
            "seed": self.seed,
            "config": self.config.to_dict(),
            "channels": [list(channel) for channel in channels],
            "models": list(models),
        }

    def collect_datasets(
        self,
        models: Optional[Iterable[str]] = None,
        channels: Sequence[Tuple[str, str]] = TABLE3_CHANNELS,
        traces_per_model: Optional[int] = None,
        sink: Optional[TraceArchiveWriter] = None,
        on_dead: str = "raise",
        resume: bool = False,
    ) -> Dict[Tuple[str, str], TraceSet]:
        """Offline phase: labeled trace sets for every channel.

        With ``sink`` given, every recorded trace is appended to the
        archive the moment its run completes — the recording session
        streams to disk as it polls, and the returned in-memory
        datasets match what :meth:`FingerprintAnalyzer.from_archive`
        later loads, bit for bit.  After each completed run the sink
        gets a progress checkpoint.

        With ``resume=True`` and a sink reopened via
        ``TraceArchiveWriter(..., resume=True)``, runs the interrupted
        session already persisted are loaded back from disk instead of
        re-recorded; chunks from a half-finished run are rolled back
        and re-recorded at the same indices.  Recording is
        deterministic, so the final archive and returned datasets are
        byte-identical to an uninterrupted session's.
        """
        if models is None:
            models = list_models()
        models = list(models)
        if traces_per_model is None:
            traces_per_model = self.config.traces_per_model
        datasets: Dict[Tuple[str, str], TraceSet] = {
            channel: TraceSet() for channel in channels
        }
        runs_done = 0
        if resume:
            if sink is None:
                raise ValueError("resume=True needs a sink archive writer")
            sink.drop_entries_after_checkpoint()
            state = sink.checkpoint_state or {}
            runs_done = int(state.get("runs_done", 0))
            for entry in sink.entries:
                trace = read_chunk_entry(sink.path, entry)
                datasets[(trace.domain, trace.quantity)].add(trace)
        run_index = 0
        for name in models:
            model = build_model(name)
            for repetition in range(traces_per_model):
                if run_index < runs_done:
                    # Already persisted by the interrupted session:
                    # advance the experiment clock exactly as the
                    # recorded run did, but skip the recording.
                    self._next_window()
                    run_index += 1
                    continue
                run = self.record_run(
                    model,
                    channels=channels,
                    run_index=repetition,
                    on_dead=on_dead,
                )
                for channel, trace in run.items():
                    datasets[channel].add(trace)
                    if sink is not None:
                        sink.append(trace)
                run_index += 1
                if sink is not None:
                    sink.checkpoint(
                        {
                            "experiment": "fingerprint",
                            "runs_done": run_index,
                            "model": name,
                            "repetition": repetition,
                        }
                    )
        return datasets

    # ------------------------------------------- delegated evaluation

    def _features(self, dataset: TraceSet, duration: Optional[float]):
        """See :meth:`FingerprintAnalyzer._features`."""
        return self.analyzer._features(dataset, duration)

    def evaluate_channel(self, *args, **kwargs) -> CrossValidationResult:
        """See :meth:`FingerprintAnalyzer.evaluate_channel`."""
        return self.analyzer.evaluate_channel(*args, **kwargs)

    def evaluate_table3(self, *args, **kwargs):
        """See :meth:`FingerprintAnalyzer.evaluate_table3`."""
        return self.analyzer.evaluate_table3(*args, **kwargs)

    def evaluate_fused(self, *args, **kwargs) -> CrossValidationResult:
        """See :meth:`FingerprintAnalyzer.evaluate_fused`."""
        return self.analyzer.evaluate_fused(*args, **kwargs)

    def evaluate_fused_degraded(self, *args, **kwargs) -> Dict:
        """See :meth:`FingerprintAnalyzer.evaluate_fused_degraded`."""
        return self.analyzer.evaluate_fused_degraded(*args, **kwargs)

    def train(self, dataset: TraceSet) -> RandomForestClassifier:
        """See :meth:`FingerprintAnalyzer.train`."""
        return self.analyzer.train(dataset)

    def train_all(self, *args, **kwargs):
        """See :meth:`FingerprintAnalyzer.train_all`."""
        return self.analyzer.train_all(*args, **kwargs)

    def classify(self, classifier, trace: Trace) -> str:
        """See :meth:`FingerprintAnalyzer.classify`."""
        return self.analyzer.classify(classifier, trace)

    def classify_topk(self, classifier, trace: Trace, k: int = 5):
        """See :meth:`FingerprintAnalyzer.classify_topk`."""
        return self.analyzer.classify_topk(classifier, trace, k=k)
