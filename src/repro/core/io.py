"""Trace persistence: the boundary between the two attack planes.

The offline fingerprinting phase is collect-once / analyze-anywhere:
traces recorded on the device get archived and shipped to the analysis
machine.  Two formats are supported:

* **v1** — one compressed ``.npz`` with a JSON header and every trace
  resident; written by :func:`save_traceset`, loaded bit-exactly by
  :func:`load_traceset`.  Kept for existing archives.
* **v2** — a directory archive (:class:`TraceArchiveWriter` /
  :class:`TraceArchiveReader`): an append-only ``manifest.jsonl``
  plus one small ``.npz`` per chunk, so a recording session can
  stream to disk as it polls and an analysis process can replay
  chunk-by-chunk without materializing the capture.  Long captures
  may be split across parts (``trace_id`` + ``part``) and reassemble
  bit-exactly on load.

Chunks are written *uncompressed* (``np.savez``), which makes every
array a contiguous byte range inside its ``.npz`` — so readers can
memory-map chunk arrays straight off disk (``mmap=True`` on
:class:`TraceArchiveReader` / :func:`read_chunk_entry`) instead of
copying them through the zip layer.  Compressed chunks from older
archives still load through the copying path transparently.

Readings are integers and timestamps float64; both formats round-trip
bit-exactly.
"""

from __future__ import annotations

import json
import struct
import zipfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np
from numpy.lib import format as npy_format

from repro.core.traces import Trace, TraceQuality, TraceSet
from repro.perf.shm import MmapSlice, resolve_array

#: Latest archive format version.
FORMAT_VERSION = 2

#: The ``.npz`` single-file format written by :func:`save_traceset`.
V1_FORMAT_VERSION = 1

#: Manifest file name inside a v2 archive directory.
MANIFEST_NAME = "manifest.jsonl"

#: Archive kind tag in the v2 manifest header.
ARCHIVE_KIND = "amperebleed-trace-archive"


class ArchiveError(ValueError):
    """A trace archive is missing, corrupted, or truncated."""


class ArchiveCorruptError(ArchiveError):
    """An archive is damaged beyond what a torn tail explains.

    Raised only for true corruption — a garbled manifest line with
    intact records after it, or a manifest whose header never made it
    to disk — never for benign states like a missing footer on a
    still-recording archive or a file that simply is not an archive.
    The fleet layer treats this subclass as the quarantine trigger
    (:func:`repro.resilience.quarantine.quarantine_archive`): the
    damaged directory is moved aside with a reason record and the job
    re-records fresh, instead of aborting the whole campaign.
    """


# --------------------------------------------------------------- v1 npz


def save_traceset(traceset: TraceSet, path: Union[str, Path]) -> Path:
    """Write a trace set as a v1 ``.npz`` (appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    header = {
        "version": V1_FORMAT_VERSION,
        "n_traces": len(traceset),
        "traces": [
            {
                "domain": trace.domain,
                "quantity": trace.quantity,
                "label": trace.label,
            }
            for trace in traceset
        ],
    }
    arrays = {"header": np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )}
    for index, trace in enumerate(traceset):
        arrays[f"times_{index}"] = trace.times
        arrays[f"values_{index}"] = trace.values
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def _load_traceset_v1(path: Path) -> TraceSet:
    """Read a v1 archive written by :func:`save_traceset`."""
    try:
        archive = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, OSError, ValueError) as error:
        raise ArchiveError(
            f"corrupted trace archive {path}: {error}"
        ) from None
    with archive:
        try:
            header_bytes = archive["header"].tobytes()
        except KeyError:
            raise ArchiveError(f"{path} is not a trace archive") from None
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ArchiveError(
                f"corrupted trace archive header in {path}: {error}"
            ) from None
        if header.get("version") != V1_FORMAT_VERSION:
            raise ArchiveError(
                f"unsupported trace archive version {header.get('version')}"
            )
        traceset = TraceSet()
        for index, meta in enumerate(header["traces"]):
            try:
                times = archive[f"times_{index}"]
                values = archive[f"values_{index}"]
            except KeyError:
                raise ArchiveError(
                    f"truncated trace archive {path}: missing arrays for "
                    f"trace {index} of {len(header['traces'])}"
                ) from None
            traceset.add(
                Trace(
                    times=times,
                    values=values,
                    domain=meta["domain"],
                    quantity=meta["quantity"],
                    label=meta["label"],
                )
            )
    return traceset


# --------------------------------------------------- v2 directory archive


#: Byte layout of a zip local file header: the name/extra lengths that
#: position a STORED member's payload sit at offsets 26 and 28.
_ZIP_LOCAL_HEADER_SIZE = 30
_ZIP_LOCAL_MAGIC = b"PK\x03\x04"


def npz_member_layout(
    chunk_path: Path, names: Tuple[str, ...]
) -> Optional[Dict[str, MmapSlice]]:
    """Locate uncompressed ``.npz`` members as mappable byte ranges.

    A ``np.savez`` archive stores each array as a STORED (uncompressed)
    zip member, so the ``.npy`` payload is one contiguous byte range of
    the file: locate it through the member's local header, parse the
    ``.npy`` header, and describe it as a
    :class:`~repro.perf.shm.MmapSlice` — the descriptor any process
    (this one or a pool worker on the other side of a fork) can
    :func:`~repro.perf.shm.resolve_array` into a read-only
    ``np.memmap`` without touching the zip layer again.

    Returns ``None`` whenever zero-copy is impossible (compressed
    members from older archives, unexpected ``.npy`` versions), letting
    callers fall back to the regular :func:`np.load` path.  Corruption
    raises the same exception types ``np.load`` would.
    """
    offsets = {}
    with open(chunk_path, "rb") as handle:
        with zipfile.ZipFile(handle) as archive:
            for name in names:
                info = archive.getinfo(f"{name}.npy")
                if info.compress_type != zipfile.ZIP_STORED:
                    return None
                # The central directory's name/extra lengths can differ
                # from the local header's; the payload follows the
                # *local* header, so read the lengths from there.
                handle.seek(info.header_offset)
                local = handle.read(_ZIP_LOCAL_HEADER_SIZE)
                if (
                    len(local) != _ZIP_LOCAL_HEADER_SIZE
                    or local[:4] != _ZIP_LOCAL_MAGIC
                ):
                    raise zipfile.BadZipFile(
                        f"bad local file header for {name}.npy"
                    )
                name_length, extra_length = struct.unpack(
                    "<HH", local[26:30]
                )
                handle.seek(
                    info.header_offset
                    + _ZIP_LOCAL_HEADER_SIZE
                    + name_length
                    + extra_length
                )
                version = npy_format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = (
                        npy_format.read_array_header_1_0(handle)
                    )
                elif version == (2, 0):
                    shape, fortran, dtype = (
                        npy_format.read_array_header_2_0(handle)
                    )
                else:
                    return None
                if dtype.hasobject:
                    raise ValueError(
                        f"object arrays in {chunk_path} cannot be mapped"
                    )
                offsets[name] = (handle.tell(), shape, fortran, dtype)
    return {
        name: MmapSlice(
            path=str(chunk_path),
            dtype=dtype.str,
            shape=tuple(shape),
            offset=offset,
            order="F" if fortran else "C",
        )
        for name, (offset, shape, fortran, dtype) in offsets.items()
    }


def _mmap_npz_arrays(
    chunk_path: Path, names: Tuple[str, ...]
) -> Optional[Dict[str, np.ndarray]]:
    """Read-only memory-mapped views of uncompressed ``.npz`` members.

    The in-process spelling of :func:`npz_member_layout`: resolve each
    member's :class:`~repro.perf.shm.MmapSlice` right here — no copy,
    no decompression, pages fault in on first touch.
    """
    layout = npz_member_layout(chunk_path, names)
    if layout is None:
        return None
    return {name: resolve_array(piece) for name, piece in layout.items()}


def read_chunk_entry(path: Path, entry: dict, mmap: bool = False) -> Trace:
    """Load one manifest chunk entry from an archive directory.

    Shared by :class:`TraceArchiveReader` and by resumed
    :class:`TraceArchiveWriter` sessions rebuilding their in-memory
    datasets from already-persisted chunks.  ``mmap=True`` maps the
    chunk's arrays off disk instead of copying them (falling back to a
    copy for compressed chunks written by older archives).
    """
    chunk_path = Path(path) / entry["file"]
    if not chunk_path.exists():
        raise ArchiveError(
            f"truncated trace archive {path}: chunk file "
            f"{entry['file']} is missing"
        )
    try:
        mapped = (
            _mmap_npz_arrays(chunk_path, ("times", "values"))
            if mmap
            else None
        )
        if mapped is not None:
            times = mapped["times"]
            values = mapped["values"]
        else:
            with np.load(chunk_path, allow_pickle=False) as arrays:
                times = arrays["times"]
                values = arrays["values"]
    except (zipfile.BadZipFile, OSError, ValueError, KeyError) as error:
        raise ArchiveError(
            f"corrupted chunk {entry['file']} in {path}: {error}"
        ) from None
    quality = entry.get("quality")
    return Trace(
        times=times,
        values=values,
        domain=entry["domain"],
        quantity=entry["quantity"],
        label=entry.get("label"),
        quality=(
            TraceQuality.from_dict(quality) if quality is not None else None
        ),
    )


class TraceArchiveWriter:
    """Append-mode writer for a v2 directory archive.

    Every :meth:`append` immediately writes one chunk ``.npz`` and one
    manifest line, so a crash mid-capture loses at most the chunk in
    flight; :meth:`close` seals the archive with a footer line that
    readers use to detect truncation.

    An interrupted recording leaves an unsealed manifest; reopening
    the same directory with ``resume=True`` recovers it — a corrupt
    trailing manifest line (a write torn mid-crash) is truncated away,
    an unreadable trailing chunk file is dropped along with its entry,
    and appending continues at the exact chunk index where the crash
    hit.  Because recording is deterministic, a resumed session
    rewrites the lost tail bit-identically.  :meth:`checkpoint` records
    arbitrary JSON progress markers in the manifest that the resumed
    session reads back via :attr:`checkpoint_state`.

    Args:
        path: archive directory (created; must not already contain a
            manifest unless ``resume`` is set).
        meta: experiment metadata stored in the manifest header —
            e.g. the fingerprint configuration, board name, seed —
            so the analysis plane can reproduce the recording's
            evaluation without out-of-band knowledge.  On resume it
            must match the interrupted session's header exactly.
        resume: recover an interrupted (unsealed) archive at ``path``
            instead of refusing to touch it.  A sealed archive still
            refuses — there is nothing left to resume.
    """

    def __init__(
        self,
        path: Union[str, Path],
        meta: Optional[dict] = None,
        resume: bool = False,
    ):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.path / MANIFEST_NAME
        self.meta = dict(meta) if meta else {}
        self._meta_updates: dict = {}
        self._n_chunks = 0
        self._closed = False
        #: Chunk entries recovered from an interrupted manifest
        #: (empty for a fresh archive).
        self.entries: list = []
        #: Last :meth:`checkpoint` state recovered on resume (or
        #: recorded this session); ``None`` when never checkpointed.
        self.checkpoint_state: Optional[dict] = None
        if self._manifest_path.exists():
            if not resume:
                raise ArchiveError(
                    f"archive {self.path} already has a manifest; "
                    f"write to a fresh directory or pass resume=True"
                )
            self._recover(meta)
            self._manifest = self._manifest_path.open("a", encoding="utf-8")
            return
        header = {
            "kind": ARCHIVE_KIND,
            "version": FORMAT_VERSION,
            "meta": self.meta,
        }
        self._manifest = self._manifest_path.open("a", encoding="utf-8")
        self._write_line(header)

    def _recover(self, meta: Optional[dict]) -> None:
        """Rebuild writer state from an interrupted manifest.

        Tolerates exactly the damage a killed recorder can cause — a
        torn final manifest line or a chunk entry whose ``.npz`` never
        became readable — by truncating the manifest back to the last
        fully-persisted record.  Damage anywhere *earlier* is real
        corruption and raises instead of being papered over.
        """
        lines = self._manifest_path.read_text(encoding="utf-8").split("\n")
        records = []
        torn_tail = False
        for position, line in enumerate(lines):
            text = line.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
            except json.JSONDecodeError as error:
                rest = [tail for tail in lines[position + 1:] if tail.strip()]
                if rest:
                    raise ArchiveCorruptError(
                        f"corrupted manifest line {position + 1} in "
                        f"{self._manifest_path} (not a torn tail): {error}"
                    ) from None
                torn_tail = True  # torn final line: drop it
                break
            records.append(record)
        if not records:
            raise ArchiveCorruptError(
                f"cannot resume {self.path}: no intact manifest header"
            )
        header = records[0]
        if header.get("kind") != ARCHIVE_KIND:
            raise ArchiveError(
                f"{self.path} is not an AmpereBleed trace archive"
            )
        if header.get("version") != FORMAT_VERSION:
            raise ArchiveError(
                f"unsupported trace archive version {header.get('version')}"
            )
        if any(record.get("footer") for record in records):
            raise ArchiveError(
                f"archive {self.path} is already sealed; nothing to resume"
            )
        header_meta = header.get("meta", {})
        if meta is not None and dict(meta) != header_meta:
            raise ArchiveError(
                f"resume metadata mismatch for {self.path}: the "
                f"interrupted session recorded a different configuration"
            )
        self.meta = dict(header_meta)
        body = records[1:]
        entries = [record for record in body if "checkpoint" not in record]
        # Only the final chunk write can be torn (chunk .npz lands on
        # disk before its manifest line); verify it and drop the entry
        # — plus any checkpoint recorded after it — if unreadable.
        while entries:
            last = entries[-1]
            chunk_path = self.path / last["file"]
            try:
                with np.load(chunk_path, allow_pickle=False) as arrays:
                    arrays["times"], arrays["values"]
                break
            except (
                zipfile.BadZipFile, OSError, ValueError, KeyError,
            ):
                cut = body.index(last)
                body = body[:cut]
                entries = entries[:-1]
        kept = [header] + body
        if torn_tail or len(kept) != len(records):
            tmp_path = self._manifest_path.with_suffix(".jsonl.tmp")
            tmp_path.write_text(
                "".join(json.dumps(record) + "\n" for record in kept),
                encoding="utf-8",
            )
            tmp_path.replace(self._manifest_path)
        elif lines and lines[-1].strip():
            # Manifest survived intact but without a trailing newline;
            # make sure the next append starts on its own line.
            with self._manifest_path.open("a", encoding="utf-8") as handle:
                handle.write("\n")
        checkpoints = [
            record["checkpoint"] for record in body if "checkpoint" in record
        ]
        self.entries = entries
        self.checkpoint_state = checkpoints[-1] if checkpoints else None
        self._n_chunks = len(entries)

    @property
    def n_chunks(self) -> int:
        """Chunks persisted so far (recovered + appended)."""
        return self._n_chunks

    def _write_line(self, record: dict) -> None:
        self._manifest.write(json.dumps(record) + "\n")
        self._manifest.flush()

    def checkpoint(self, state: dict) -> None:
        """Record a resumable progress marker in the manifest.

        Checkpoint records are ignored by readers' chunk iteration;
        a resumed writer surfaces the most recent one as
        :attr:`checkpoint_state` so the recording loop can skip work
        that already landed on disk.
        """
        if self._closed:
            raise ArchiveError(f"archive {self.path} is already closed")
        if not isinstance(state, dict):
            raise TypeError("checkpoint state must be a dict")
        self._write_line({"checkpoint": state})
        self.checkpoint_state = dict(state)

    def drop_entries_after_checkpoint(self) -> int:
        """Roll a resumed archive back to its last checkpoint.

        Recording loops that append several chunks per unit of work and
        checkpoint *between* units call this right after resuming: any
        chunk persisted after the final checkpoint belongs to a
        half-finished unit and will be re-recorded (deterministically,
        hence bit-identically) at the same chunk indices.  Returns the
        number of entries dropped.  Without a checkpoint, every
        recovered entry is dropped.
        """
        if self._closed:
            raise ArchiveError(f"archive {self.path} is already closed")
        lines = self._manifest_path.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines if line.strip()]
        last_checkpoint = 0
        for position, record in enumerate(records):
            if "checkpoint" in record:
                last_checkpoint = position
        kept = records[: last_checkpoint + 1]
        dropped = [
            record
            for record in records[last_checkpoint + 1:]
            if "checkpoint" not in record
        ]
        if not dropped:
            return 0
        self._manifest.close()
        tmp_path = self._manifest_path.with_suffix(".jsonl.tmp")
        tmp_path.write_text(
            "".join(json.dumps(record) + "\n" for record in kept),
            encoding="utf-8",
        )
        tmp_path.replace(self._manifest_path)
        self._manifest = self._manifest_path.open("a", encoding="utf-8")
        self.entries = [
            record
            for record in kept[1:]
            if "checkpoint" not in record and not record.get("footer")
        ]
        self._n_chunks = len(self.entries)
        return len(dropped)

    def append(
        self,
        trace: Trace,
        trace_id: Optional[str] = None,
        part: int = 0,
    ) -> str:
        """Persist one trace chunk; returns the chunk file name.

        ``trace_id``/``part`` group the chunks of one long capture:
        chunks sharing a ``trace_id`` are concatenated in ``part``
        order at load time.  Left unset, each append is its own
        single-part trace.

        Chunks are stored uncompressed so readers can memory-map the
        arrays in place; ``np.savez`` is deterministic (fixed zip
        timestamps, STORED members), so archive bytes stay a pure
        function of the recording.
        """
        if self._closed:
            raise ArchiveError(f"archive {self.path} is already closed")
        if not isinstance(trace, Trace):
            raise TypeError("only Trace objects can be appended")
        index = self._n_chunks
        if trace_id is None:
            trace_id = f"trace-{index:06d}"
        file_name = f"chunk_{index:06d}.npz"
        np.savez(
            self.path / file_name, times=trace.times, values=trace.values
        )
        entry = {
            "chunk": index,
            "file": file_name,
            "trace_id": trace_id,
            "part": int(part),
            "domain": trace.domain,
            "quantity": trace.quantity,
            "label": trace.label,
            "n_samples": trace.n_samples,
        }
        # Quality metadata rides the manifest only when the resilient
        # path produced some — fault-free archives stay byte-identical
        # to ones written before quality existed.
        if trace.quality is not None:
            entry["quality"] = trace.quality.to_dict()
        self._write_line(entry)
        self._n_chunks += 1
        return file_name

    def append_traceset(self, traceset: TraceSet) -> None:
        """Append every trace of a set, one chunk each."""
        for trace in traceset:
            self.append(trace)

    def update_meta(self, **updates) -> None:
        """Record metadata only known after capture (e.g. outcomes).

        The header line is already on disk when recording starts, so
        late metadata rides the footer instead; readers merge it over
        the header's ``meta``.
        """
        if self._closed:
            raise ArchiveError(f"archive {self.path} is already closed")
        self._meta_updates.update(updates)
        self.meta.update(updates)

    def close(self) -> None:
        """Seal the archive with the truncation-detection footer."""
        if self._closed:
            return
        footer = {"footer": True, "n_chunks": self._n_chunks}
        if self._meta_updates:
            footer["meta"] = self._meta_updates
        self._write_line(footer)
        self._manifest.close()
        self._closed = True

    def abort(self) -> None:
        """Stop writing without sealing — the archive stays resumable."""
        if self._closed:
            return
        self._manifest.close()
        self._closed = True

    def __enter__(self) -> "TraceArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Seal only clean exits: an exception mid-capture must leave a
        # visibly truncated archive, not a sealed partial one.
        if exc_type is None:
            self.close()
        else:
            self._manifest.close()
            self._closed = True


class TraceArchiveReader:
    """Streaming reader for a v2 directory archive.

    Args:
        path: archive directory.
        allow_partial: accept an unsealed (footer-less) manifest —
            for tailing a capture still in progress.  Default strict:
            a missing footer raises :class:`ArchiveError`.
        mmap: memory-map chunk arrays instead of copying them into
            RAM — traces become read-only views whose pages fault in
            on first touch, so replaying a large archive no longer
            materializes it.  Compressed chunks from older archives
            fall back to the copying path per chunk.
    """

    def __init__(
        self,
        path: Union[str, Path],
        allow_partial: bool = False,
        mmap: bool = False,
    ):
        self.mmap = bool(mmap)
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.exists():
            raise ArchiveError(f"no trace archive manifest at {self.path}")
        records = []
        with manifest_path.open(encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as error:
                    raise ArchiveCorruptError(
                        f"corrupted manifest line {line_number} in "
                        f"{manifest_path}: {error}"
                    ) from None
        if not records:
            raise ArchiveCorruptError(f"empty manifest in {manifest_path}")
        header = records[0]
        if header.get("kind") != ARCHIVE_KIND:
            raise ArchiveError(
                f"{self.path} is not an AmpereBleed trace archive"
            )
        if header.get("version") != FORMAT_VERSION:
            raise ArchiveError(
                f"unsupported trace archive version {header.get('version')}"
            )
        self.meta: dict = header.get("meta", {})
        footer = records[-1] if records[-1].get("footer") else None
        if footer is not None and footer.get("meta"):
            self.meta.update(footer["meta"])
        body = [record for record in records[1:] if not record.get("footer")]
        self.entries = [
            record for record in body if "checkpoint" not in record
        ]
        checkpoints = [
            record["checkpoint"] for record in body if "checkpoint" in record
        ]
        #: Most recent recording checkpoint, if the session wrote any.
        self.checkpoint: Optional[dict] = (
            checkpoints[-1] if checkpoints else None
        )
        self.complete = footer is not None
        if not allow_partial:
            if footer is None:
                raise ArchiveError(
                    f"truncated trace archive {self.path}: the recording "
                    f"session never sealed it (manifest footer missing)"
                )
            if footer.get("n_chunks") != len(self.entries):
                raise ArchiveError(
                    f"truncated trace archive {self.path}: footer claims "
                    f"{footer.get('n_chunks')} chunks, manifest lists "
                    f"{len(self.entries)}"
                )

    def __len__(self) -> int:
        return len(self.entries)

    def _read_chunk(self, entry: dict) -> Trace:
        return read_chunk_entry(self.path, entry, mmap=self.mmap)

    def chunk_descriptors(
        self, entry: dict
    ) -> Optional[Dict[str, MmapSlice]]:
        """Zero-copy descriptors for one entry's times/values arrays.

        Returns ``{"times": MmapSlice, "values": MmapSlice}`` for a
        STORED chunk — the handles a fleet job or pool worker can
        :func:`~repro.perf.shm.resolve_array` in its own process, so
        shipping archive data to a worker costs descriptor bytes
        instead of array pickles.  ``None`` when the chunk cannot be
        mapped (compressed legacy chunks); callers fall back to
        :func:`read_chunk_entry`.
        """
        chunk_path = self.path / entry["file"]
        if not chunk_path.exists():
            raise ArchiveError(
                f"truncated trace archive {self.path}: chunk file "
                f"{entry['file']} is missing"
            )
        try:
            return npz_member_layout(chunk_path, ("times", "values"))
        except (zipfile.BadZipFile, OSError, ValueError, KeyError) as error:
            raise ArchiveError(
                f"corrupted chunk {entry['file']} in {self.path}: {error}"
            ) from None

    def iter_chunks(self) -> Iterator[Trace]:
        """Yield chunks in recorded order, one resident at a time.

        This is the replay analogue of a live :class:`~repro.core.
        sampler.TraceStream`: detector and covert pipelines consume it
        without reassembling whole captures.
        """
        for entry in self.entries:
            yield self._read_chunk(entry)

    def load_traceset(self) -> TraceSet:
        """Reassemble every trace (multi-part captures concatenated)."""
        order = []
        parts: Dict[str, list] = {}
        for entry in self.entries:
            trace_id = entry["trace_id"]
            if trace_id not in parts:
                parts[trace_id] = []
                order.append(trace_id)
            parts[trace_id].append(entry)
        traceset = TraceSet()
        for trace_id in order:
            group = sorted(parts[trace_id], key=lambda entry: entry["part"])
            chunks = [self._read_chunk(entry) for entry in group]
            if len(chunks) == 1:
                traceset.add(chunks[0])
                continue
            first = chunks[0]
            qualities = [chunk.quality for chunk in chunks]
            quality = None
            if any(q is not None for q in qualities):
                quality = TraceQuality()
                for q in qualities:
                    quality = quality.merged(q if q is not None else
                                             TraceQuality())
            traceset.add(
                Trace(
                    times=np.concatenate([c.times for c in chunks]),
                    values=np.concatenate([c.values for c in chunks]),
                    domain=first.domain,
                    quantity=first.quantity,
                    label=first.label,
                    quality=quality,
                )
            )
        return traceset

    def load_datasets(self) -> Dict[Tuple[str, str], TraceSet]:
        """Per-channel trace sets, keyed ``(domain, quantity)``.

        This is the shape the fingerprint evaluation consumes —
        loading an archive recorded by the acquisition plane drops
        straight into ``evaluate_channel`` / ``evaluate_table3``.
        """
        datasets: Dict[Tuple[str, str], TraceSet] = {}
        for trace in self.load_traceset():
            key = (trace.domain, trace.quantity)
            datasets.setdefault(key, TraceSet()).add(trace)
        return datasets


def is_archive_dir(path: Union[str, Path]) -> bool:
    """Does ``path`` look like a v2 directory archive?"""
    path = Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).exists()


def open_archive(
    path: Union[str, Path],
    allow_partial: bool = False,
    mmap: bool = False,
) -> TraceArchiveReader:
    """Open a v2 archive for streaming reads."""
    return TraceArchiveReader(path, allow_partial=allow_partial, mmap=mmap)


def load_traceset(path: Union[str, Path]) -> TraceSet:
    """Read a trace set from either archive format.

    v1 ``.npz`` files load bit-exactly as before; v2 directories are
    reassembled through :class:`TraceArchiveReader`.
    """
    path = Path(path)
    if is_archive_dir(path):
        return TraceArchiveReader(path).load_traceset()
    if not path.exists():
        raise FileNotFoundError(f"no trace archive at {path}")
    if path.is_dir():
        raise ArchiveError(
            f"{path} is a directory without a {MANIFEST_NAME}; "
            f"not a trace archive"
        )
    return _load_traceset_v1(path)
