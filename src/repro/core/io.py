"""Trace persistence: save/load trace sets as ``.npz`` archives.

The offline fingerprinting phase is collect-once / train-many: traces
recorded on the device get archived and shipped to the analysis
machine.  Traces are stored in one compressed numpy archive with a
small JSON header, so a dataset survives round trips bit-exactly
(readings are integers; timestamps are float64).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.traces import Trace, TraceSet

#: Archive format version, bumped on layout changes.
FORMAT_VERSION = 1


def save_traceset(traceset: TraceSet, path: Union[str, Path]) -> Path:
    """Write a trace set to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    header = {
        "version": FORMAT_VERSION,
        "n_traces": len(traceset),
        "traces": [
            {
                "domain": trace.domain,
                "quantity": trace.quantity,
                "label": trace.label,
            }
            for trace in traceset
        ],
    }
    arrays = {"header": np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )}
    for index, trace in enumerate(traceset):
        arrays[f"times_{index}"] = trace.times
        arrays[f"values_{index}"] = trace.values
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_traceset(path: Union[str, Path]) -> TraceSet:
    """Read a trace set written by :func:`save_traceset`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no trace archive at {path}")
    with np.load(path, allow_pickle=False) as archive:
        try:
            header_bytes = archive["header"].tobytes()
        except KeyError:
            raise ValueError(f"{path} is not a trace archive") from None
        header = json.loads(header_bytes.decode("utf-8"))
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace archive version {header.get('version')}"
            )
        traceset = TraceSet()
        for index, meta in enumerate(header["traces"]):
            traceset.add(
                Trace(
                    times=archive[f"times_{index}"],
                    values=archive[f"values_{index}"],
                    domain=meta["domain"],
                    quantity=meta["quantity"],
                    label=meta["label"],
                )
            )
    return traceset
