"""Side-channel traces: what the attacking process actually records.

A :class:`Trace` is one polling session of one hwmon channel: the poll
timestamps, the integer readings the sysfs file returned, and the
labels the attack pipeline needs (which sensor, which quantity, and —
during the offline phase — which victim produced it).  A
:class:`TraceSet` is a labeled collection that can flatten itself into
the fixed-size feature matrix the classifier consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Trace:
    """One recorded side-channel trace.

    Attributes:
        times: poll timestamps in seconds (monotonic).
        values: integer readings in hwmon units (mA / mV / uW).
        domain: sensor domain key (``"fpga"``, ``"ddr"``, ...).
        quantity: ``"current"``, ``"voltage"`` or ``"power"``.
        label: ground-truth tag (victim model name) when known.
    """

    times: np.ndarray
    values: np.ndarray
    domain: str
    quantity: str
    label: Optional[str] = None

    def __post_init__(self):
        times = np.asarray(self.times, dtype=np.float64)
        values = np.asarray(self.values)
        if times.ndim != 1 or values.ndim != 1:
            raise ValueError("times and values must be one-dimensional")
        if times.size != values.size:
            raise ValueError("times and values must have equal length")
        if times.size == 0:
            raise ValueError("a trace needs at least one sample")
        if times.size > 1 and np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    @property
    def n_samples(self) -> int:
        """Number of recorded polls."""
        return int(self.values.size)

    @property
    def duration(self) -> float:
        """Span of the polling session in seconds."""
        return float(self.times[-1] - self.times[0])

    def truncated(self, duration: float) -> "Trace":
        """The prefix covering the first ``duration`` seconds.

        This is how Table III's 1 s / 2 s / ... columns are produced
        from the 5 s full-length recordings.
        """
        if duration <= 0:
            raise ValueError("duration must be > 0")
        cutoff = self.times[0] + duration
        keep = self.times <= cutoff + 1e-12
        if not keep.any():
            keep[0] = True
        return Trace(
            times=self.times[keep],
            values=self.values[keep],
            domain=self.domain,
            quantity=self.quantity,
            label=self.label,
        )

    def relabeled(self, label: str) -> "Trace":
        """A copy with a different ground-truth label."""
        return Trace(
            times=self.times,
            values=self.values,
            domain=self.domain,
            quantity=self.quantity,
            label=label,
        )

    def __repr__(self) -> str:
        return (
            f"Trace({self.domain}/{self.quantity}, {self.n_samples} samples, "
            f"{self.duration:.2f} s, label={self.label!r})"
        )


@dataclass
class TraceSet:
    """A labeled collection of traces (one classifier's dataset)."""

    traces: List[Trace] = field(default_factory=list)

    def add(self, trace: Trace) -> None:
        """Append one trace."""
        if not isinstance(trace, Trace):
            raise TypeError("only Trace objects can be added")
        self.traces.append(trace)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    @property
    def labels(self) -> List[Optional[str]]:
        """Ground-truth label of each trace, in order."""
        return [trace.label for trace in self.traces]

    def filter(self, domain: str = None, quantity: str = None) -> "TraceSet":
        """Subset by sensor domain and/or quantity."""
        kept = [
            trace
            for trace in self.traces
            if (domain is None or trace.domain == domain)
            and (quantity is None or trace.quantity == quantity)
        ]
        return TraceSet(kept)

    def truncated(self, duration: float) -> "TraceSet":
        """Every trace truncated to its first ``duration`` seconds."""
        return TraceSet([trace.truncated(duration) for trace in self.traces])

    def to_matrix(
        self, n_features: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fixed-width feature matrix + label vector for the classifier.

        Each trace is resampled to ``n_features`` points (see
        :func:`repro.core.features.resample_values`); unlabeled traces
        are rejected since the matrix is a supervised dataset.
        """
        from repro.core.features import resample_values

        if not self.traces:
            raise ValueError("empty trace set")
        rows = []
        labels = []
        for trace in self.traces:
            if trace.label is None:
                raise ValueError("all traces must be labeled for to_matrix")
            rows.append(resample_values(trace.values, n_features))
            labels.append(trace.label)
        return np.vstack(rows), np.asarray(labels)

    def summary(self) -> Dict[str, int]:
        """Trace count per label."""
        counts: Dict[str, int] = {}
        for trace in self.traces:
            key = trace.label if trace.label is not None else "<unlabeled>"
            counts[key] = counts.get(key, 0) + 1
        return counts
