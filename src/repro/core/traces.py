"""Side-channel traces: what the attacking process actually records.

A :class:`Trace` is one polling session of one hwmon channel: the poll
timestamps, the integer readings the sysfs file returned, and the
labels the attack pipeline needs (which sensor, which quantity, and —
during the offline phase — which victim produced it).  A
:class:`TraceSet` is a labeled collection that can flatten itself into
the fixed-size feature matrix the classifier consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class TraceQuality:
    """Acquisition-quality metadata for one trace (or trace chunk).

    Recorded by the resilient sampling path when fault injection is
    armed; ``None`` on a :class:`Trace` means the trace was captured on
    the fast path with no faults scheduled, and every serialization
    layer omits it in that case so fault-free artifacts stay
    bit-identical to pre-resilience ones.

    Attributes:
        retries: total re-reads issued while recovering bad samples.
        gaps: samples still unrecovered after the retry budget.
        interpolated: gap samples filled from neighboring good polls
            (always <= ``gaps``; the difference was left as-is because
            interpolation was disabled or impossible).
        health: the channel's health state after this read
            (``"healthy"`` / ``"flaky"`` / ``"dead"``).
    """

    retries: int = 0
    gaps: int = 0
    interpolated: int = 0
    health: str = "healthy"

    def __post_init__(self):
        for name in ("retries", "gaps", "interpolated"):
            count = getattr(self, name)
            if not isinstance(count, int) or count < 0:
                raise ValueError(f"{name} must be a non-negative int")
        if self.interpolated > self.gaps:
            raise ValueError("interpolated cannot exceed gaps")
        if self.health not in ("healthy", "flaky", "dead"):
            raise ValueError(
                f"health must be 'healthy', 'flaky', or 'dead'; "
                f"got {self.health!r}"
            )

    @property
    def clean(self) -> bool:
        """True when the read needed no recovery at all."""
        return (
            self.retries == 0
            and self.gaps == 0
            and self.health == "healthy"
        )

    def merged(self, other: "TraceQuality") -> "TraceQuality":
        """Combine per-chunk quality into session-level quality.

        Counters add; the health field keeps the *later* chunk's state
        (health is a running property of the channel, so the last
        observation wins).
        """
        return TraceQuality(
            retries=self.retries + other.retries,
            gaps=self.gaps + other.gaps,
            interpolated=self.interpolated + other.interpolated,
            health=other.health,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for archive manifests."""
        return {
            "retries": self.retries,
            "gaps": self.gaps,
            "interpolated": self.interpolated,
            "health": self.health,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TraceQuality":
        """Inverse of :meth:`to_dict`."""
        return cls(
            retries=int(payload.get("retries", 0)),
            gaps=int(payload.get("gaps", 0)),
            interpolated=int(payload.get("interpolated", 0)),
            health=str(payload.get("health", "healthy")),
        )


@dataclass(frozen=True)
class Trace:
    """One recorded side-channel trace.

    Attributes:
        times: poll timestamps in seconds (monotonic).
        values: integer readings in hwmon units (mA / mV / uW).
        domain: sensor domain key (``"fpga"``, ``"ddr"``, ...).
        quantity: ``"current"``, ``"voltage"`` or ``"power"``.
        label: ground-truth tag (victim model name) when known.
        quality: acquisition metadata from the resilient sampling
            path; ``None`` for fault-free fast-path captures.
    """

    times: np.ndarray
    values: np.ndarray
    domain: str
    quantity: str
    label: Optional[str] = None
    quality: Optional[TraceQuality] = None

    def __post_init__(self):
        times = np.asarray(self.times, dtype=np.float64)
        values = np.asarray(self.values)
        if times.ndim != 1 or values.ndim != 1:
            raise ValueError("times and values must be one-dimensional")
        if times.size != values.size:
            raise ValueError("times and values must have equal length")
        if times.size == 0:
            raise ValueError("a trace needs at least one sample")
        if times.size > 1 and np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    @property
    def n_samples(self) -> int:
        """Number of recorded polls."""
        return int(self.values.size)

    @property
    def duration(self) -> float:
        """Span of the polling session in seconds."""
        return float(self.times[-1] - self.times[0])

    def truncation_mask(self, duration: float) -> np.ndarray:
        """Boolean sample mask for the first ``duration`` seconds.

        The single source of the truncation rule: :meth:`truncated`
        applies it per trace and :meth:`TraceSet.to_matrix` applies it
        batch-wise without building intermediate ``Trace`` objects.
        """
        if duration <= 0:
            raise ValueError("duration must be > 0")
        cutoff = self.times[0] + duration
        keep = self.times <= cutoff + 1e-12
        if not keep.any():
            keep[0] = True
        return keep

    def truncated(self, duration: float) -> "Trace":
        """The prefix covering the first ``duration`` seconds.

        This is how Table III's 1 s / 2 s / ... columns are produced
        from the 5 s full-length recordings.
        """
        keep = self.truncation_mask(duration)
        return Trace(
            times=self.times[keep],
            values=self.values[keep],
            domain=self.domain,
            quantity=self.quantity,
            label=self.label,
            quality=self.quality,
        )

    def relabeled(self, label: str) -> "Trace":
        """A copy with a different ground-truth label."""
        return Trace(
            times=self.times,
            values=self.values,
            domain=self.domain,
            quantity=self.quantity,
            label=label,
            quality=self.quality,
        )

    def __repr__(self) -> str:
        return (
            f"Trace({self.domain}/{self.quantity}, {self.n_samples} samples, "
            f"{self.duration:.2f} s, label={self.label!r})"
        )


@dataclass
class TraceSet:
    """A labeled collection of traces (one classifier's dataset)."""

    traces: List[Trace] = field(default_factory=list)

    def add(self, trace: Trace) -> None:
        """Append one trace."""
        if not isinstance(trace, Trace):
            raise TypeError("only Trace objects can be added")
        self.traces.append(trace)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    @property
    def labels(self) -> List[Optional[str]]:
        """Ground-truth label of each trace, in order."""
        return [trace.label for trace in self.traces]

    def filter(self, domain: str = None, quantity: str = None) -> "TraceSet":
        """Subset by sensor domain and/or quantity."""
        kept = [
            trace
            for trace in self.traces
            if (domain is None or trace.domain == domain)
            and (quantity is None or trace.quantity == quantity)
        ]
        return TraceSet(kept)

    def truncated(self, duration: float) -> "TraceSet":
        """Every trace truncated to its first ``duration`` seconds."""
        return TraceSet([trace.truncated(duration) for trace in self.traces])

    def to_matrix(
        self, n_features: int, duration: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fixed-width feature matrix + label vector for the classifier.

        Each trace contributes one whole-trace window to
        :func:`repro.core.streaming.window_feature_matrix` — the same
        windowing entry point the incremental streaming extractor
        uses, so batch and live features share one kernel path.
        Unlabeled traces are rejected since the matrix is a supervised
        dataset.  With ``duration`` given, every trace is first
        truncated to its opening ``duration`` seconds — equivalent to
        ``self.truncated(duration).to_matrix(n_features)`` but without
        materializing the intermediate trace objects.
        """
        from repro.core.streaming import window_feature_matrix

        if not self.traces:
            raise ValueError("empty trace set")
        values_list = []
        labels = []
        for trace in self.traces:
            if trace.label is None:
                raise ValueError("all traces must be labeled for to_matrix")
            values = trace.values
            if duration is not None:
                values = values[trace.truncation_mask(duration)]
            values_list.append(values)
            labels.append(trace.label)
        return (
            window_feature_matrix(values_list, n_features),
            np.asarray(labels),
        )

    def summary(self) -> Dict[str, int]:
        """Trace count per label."""
        counts: Dict[str, int] = {}
        for trace in self.traces:
            key = trace.label if trace.label is not None else "<unlabeled>"
            counts[key] = counts.get(key, 0) + 1
        return counts
