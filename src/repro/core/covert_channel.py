"""Current-based covert channel across the FPGA/CPU boundary.

A natural corollary of AmpereBleed (and of the C3APSULe line of work
the paper cites): if an unprivileged ARM process can *observe* FPGA
power through the INA226s, then a colluding FPGA circuit can *signal*
to it by modulating its own power — a covert channel that crosses the
hardware isolation boundary with no shared memory, no network and no
crafted receiver circuit.

The implementation is deliberately simple and robust: on-off keying
(OOK).  The sender toggles a power load per bit; the receiver polls
``curr1_input`` one bit window at a time (bounded chunks — a real
receiver loop never holds the whole frame), averages each window, and
thresholds against a calibration derived from an alternating preamble.
Demodulation is a pure function of the recorded readings, so a frame
archived by the acquisition plane replays to exactly the bits a live
receiver decodes.  The channel's capacity is gated by the sensor's
update interval — one more reason the root-only ``update_interval``
knob matters — which the covert bench sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.sampler import HwmonSampler
from repro.core.traces import Trace
from repro.soc.soc import Soc
from repro.soc.workload import PiecewiseActivity
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive

#: Alternating preamble used for threshold calibration.
PREAMBLE: Tuple[int, ...] = (1, 0, 1, 0, 1, 0, 1, 0)


@dataclass(frozen=True)
class ChannelReport:
    """Outcome of one covert transmission."""

    sent: Tuple[int, ...]
    received: Tuple[int, ...]
    bit_period: float

    @property
    def bit_errors(self) -> int:
        """Payload bits decoded incorrectly."""
        return sum(a != b for a, b in zip(self.sent, self.received))

    @property
    def bit_error_rate(self) -> float:
        """Fraction of payload bits in error."""
        if not self.sent:
            return 0.0
        return self.bit_errors / len(self.sent)

    @property
    def raw_throughput_bps(self) -> float:
        """Signaling rate in bits per second (before coding overhead)."""
        return 1.0 / self.bit_period

    @property
    def effective_throughput_bps(self) -> float:
        """Error-free goodput: raw rate scaled by correct-bit fraction."""
        return self.raw_throughput_bps * (1.0 - self.bit_error_rate)


class PowerCovertSender:
    """The FPGA-side conspirator: modulates a power load per bit.

    Args:
        p_high: additional watts drawn while transmitting a 1.  Any
            ordinary compute kernel can serve as the load; no special
            circuit is required (contrast with RO-based channels).
        p_low: watts drawn for a 0 (idle leakage of the load logic).
    """

    def __init__(self, p_high: float = 1.2, p_low: float = 0.02):
        if p_high <= p_low:
            raise ValueError("p_high must exceed p_low")
        if p_low < 0:
            raise ValueError("p_low must be >= 0")
        self.p_high = float(p_high)
        self.p_low = float(p_low)

    def modulate(
        self, bits: Sequence[int], bit_period: float, start: float = 0.0
    ) -> PiecewiseActivity:
        """OOK-modulate ``bits`` (preamble prepended) into a timeline."""
        require_positive(bit_period, "bit_period")
        frame = list(PREAMBLE) + [1 if bit else 0 for bit in bits]
        segments = [
            (bit_period, self.p_high if bit else self.p_low) for bit in frame
        ]
        return PiecewiseActivity.from_segments(segments, start=start)


def _window_mean(window: np.ndarray) -> float:
    """Mean of one bit window, discarding the leading edge poll.

    The first poll of a window may still serve the previous bit's
    cached conversion; dropping it is what a real receiver does.
    """
    window = window.astype(np.float64)
    if window.size > 1:
        window = window[1:]
    return float(window.mean())


def slice_bits(means: np.ndarray, n_payload_bits: int) -> List[int]:
    """Threshold per-bit means against the preamble calibration.

    Pure analysis-plane arithmetic: the alternating preamble
    self-calibrates the slicing threshold (midpoint of the high/low
    means), so decoding needs no knowledge of the board's idle
    current — and works identically on live and archived frames.
    """
    means = np.asarray(means, dtype=np.float64)
    if means.size != len(PREAMBLE) + n_payload_bits:
        raise ValueError(
            f"expected {len(PREAMBLE) + n_payload_bits} bit means "
            f"(preamble + payload), got {means.size}"
        )
    preamble_means = means[: len(PREAMBLE)]
    highs = preamble_means[np.array(PREAMBLE, dtype=bool)]
    lows = preamble_means[~np.array(PREAMBLE, dtype=bool)]
    threshold = (highs.mean() + lows.mean()) / 2.0
    payload = means[len(PREAMBLE):]
    return [int(value > threshold) for value in payload]


def decode_frame(trace: Trace, n_payload_bits: int) -> List[int]:
    """Analysis plane: demodulate an archived frame recording.

    ``trace`` must cover the whole frame (preamble + payload) at the
    receiver's polling geometry — i.e. what
    :meth:`PowerCovertReceiver.demodulate` recorded through its
    ``sink``.  Pure: needs no sampler or SoC, so a replay machine can
    decode with nothing but the archive, and returns exactly the bits
    the live receiver decoded.
    """
    total_bits = len(PREAMBLE) + n_payload_bits
    if trace.n_samples % total_bits:
        raise ValueError(
            f"frame of {trace.n_samples} samples does not divide "
            f"into {total_bits} bit windows"
        )
    polls_per_bit = trace.n_samples // total_bits
    windows = trace.values.reshape(total_bits, polls_per_bit)
    means = np.array([_window_mean(window) for window in windows])
    return slice_bits(means, n_payload_bits)


class PowerCovertReceiver:
    """The CPU-side conspirator: an unprivileged hwmon polling loop."""

    def __init__(
        self,
        sampler: HwmonSampler,
        domain: str = "fpga",
        oversample: int = 4,
    ):
        self.sampler = sampler
        self.domain = domain
        if oversample < 1:
            raise ValueError("oversample must be >= 1")
        self.oversample = int(oversample)

    def _polls_per_bit(self, bit_period: float) -> int:
        update = self.sampler.soc.device(self.domain).update_period
        return max(self.oversample, int(bit_period / update))

    def _bit_means(
        self,
        start: float,
        n_bits: int,
        bit_period: float,
        sink: Optional[Callable[[Trace], None]] = None,
    ) -> np.ndarray:
        """Mean current per bit window, one bounded chunk at a time.

        The stream yields exactly one bit window per chunk, so the
        receiver's resident buffer is polls-per-bit samples regardless
        of frame length; ``sink`` observes each raw chunk as it is
        captured (the acquisition plane's archive hook).
        """
        polls_per_bit = self._polls_per_bit(bit_period)
        stream = self.sampler.stream(
            self.domain,
            "current",
            start=start,
            n_samples=n_bits * polls_per_bit,
            poll_hz=polls_per_bit / bit_period,
            chunk_samples=polls_per_bit,
        )
        means = np.empty(n_bits)
        for index, chunk in enumerate(stream):
            if sink is not None:
                sink(chunk)
            means[index] = _window_mean(chunk.values)
        return means

    def demodulate(
        self,
        start: float,
        n_payload_bits: int,
        bit_period: float,
        sink: Optional[Callable[[Trace], None]] = None,
    ) -> List[int]:
        """Recover a payload sent with :class:`PowerCovertSender`.

        Polls live in bounded per-bit chunks; pass ``sink`` to tee the
        raw chunks into a trace archive while decoding.
        """
        total_bits = len(PREAMBLE) + n_payload_bits
        means = self._bit_means(start, total_bits, bit_period, sink=sink)
        return slice_bits(means, n_payload_bits)

    def decode_trace(self, trace: Trace, n_payload_bits: int) -> List[int]:
        """See :func:`decode_frame` (kept for API symmetry)."""
        return decode_frame(trace, n_payload_bits)


class CovertChannel:
    """End-to-end channel harness over one simulated SoC."""

    def __init__(
        self,
        soc: Optional[Soc] = None,
        sender: Optional[PowerCovertSender] = None,
        seed: Optional[int] = 0,
        session=None,
        board=None,
    ):
        from repro.session import resolve_session

        self.session = resolve_session(
            session, soc=soc, board=board, seed=seed
        )
        self.sender = sender if sender is not None else PowerCovertSender()
        self.receiver = PowerCovertReceiver(self.session.sampler)
        self._clock = 1.0

    @property
    def soc(self) -> Soc:
        return self.session.soc

    def transmit(
        self,
        bits: Sequence[int],
        bit_period: float = 0.08,
        sink: Optional[Callable[[Trace], None]] = None,
    ) -> ChannelReport:
        """Send ``bits`` across the boundary and report the outcome.

        ``sink`` receives each raw receiver chunk as it is captured —
        wire it to a :class:`~repro.core.io.TraceArchiveWriter` to
        archive the frame for later replay.
        """
        bits = tuple(1 if bit else 0 for bit in bits)
        start = self._clock
        frame_seconds = (len(PREAMBLE) + len(bits)) * bit_period
        self._clock += frame_seconds + 1.0
        timeline = self.sender.modulate(bits, bit_period, start=start)
        self.soc.replace_workload("fpga", "covert-sender", timeline)
        try:
            received = self.receiver.demodulate(
                start, len(bits), bit_period, sink=sink
            )
        finally:
            self.soc.detach_workload("fpga", "covert-sender")
        return ChannelReport(
            sent=bits, received=tuple(received), bit_period=bit_period
        )

    def capacity_sweep(
        self, bit_periods: Sequence[float], n_bits: int = 64, seed: int = 0
    ) -> List[ChannelReport]:
        """Measure BER/goodput across signaling rates."""
        rng = ensure_rng(seed)
        reports = []
        for bit_period in bit_periods:
            bits = rng.integers(0, 2, size=n_bits)
            reports.append(self.transmit(bits, bit_period=bit_period))
        return reports
