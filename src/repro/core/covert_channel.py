"""Current-based covert channel across the FPGA/CPU boundary.

A natural corollary of AmpereBleed (and of the C3APSULe line of work
the paper cites): if an unprivileged ARM process can *observe* FPGA
power through the INA226s, then a colluding FPGA circuit can *signal*
to it by modulating its own power — a covert channel that crosses the
hardware isolation boundary with no shared memory, no network and no
crafted receiver circuit.

The implementation is deliberately simple and robust: on-off keying
(OOK).  The sender toggles a power load per bit; the receiver polls
``curr1_input``, averages each bit window, and thresholds against a
calibration derived from an alternating preamble.  The channel's
capacity is gated by the sensor's update interval — one more reason
the root-only ``update_interval`` knob matters — which the covert
bench sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.sampler import HwmonSampler
from repro.soc.soc import Soc
from repro.soc.workload import PiecewiseActivity
from repro.utils.validation import require_positive

#: Alternating preamble used for threshold calibration.
PREAMBLE: Tuple[int, ...] = (1, 0, 1, 0, 1, 0, 1, 0)


@dataclass(frozen=True)
class ChannelReport:
    """Outcome of one covert transmission."""

    sent: Tuple[int, ...]
    received: Tuple[int, ...]
    bit_period: float

    @property
    def bit_errors(self) -> int:
        """Payload bits decoded incorrectly."""
        return sum(a != b for a, b in zip(self.sent, self.received))

    @property
    def bit_error_rate(self) -> float:
        """Fraction of payload bits in error."""
        if not self.sent:
            return 0.0
        return self.bit_errors / len(self.sent)

    @property
    def raw_throughput_bps(self) -> float:
        """Signaling rate in bits per second (before coding overhead)."""
        return 1.0 / self.bit_period

    @property
    def effective_throughput_bps(self) -> float:
        """Error-free goodput: raw rate scaled by correct-bit fraction."""
        return self.raw_throughput_bps * (1.0 - self.bit_error_rate)


class PowerCovertSender:
    """The FPGA-side conspirator: modulates a power load per bit.

    Args:
        p_high: additional watts drawn while transmitting a 1.  Any
            ordinary compute kernel can serve as the load; no special
            circuit is required (contrast with RO-based channels).
        p_low: watts drawn for a 0 (idle leakage of the load logic).
    """

    def __init__(self, p_high: float = 1.2, p_low: float = 0.02):
        if p_high <= p_low:
            raise ValueError("p_high must exceed p_low")
        if p_low < 0:
            raise ValueError("p_low must be >= 0")
        self.p_high = float(p_high)
        self.p_low = float(p_low)

    def modulate(
        self, bits: Sequence[int], bit_period: float, start: float = 0.0
    ) -> PiecewiseActivity:
        """OOK-modulate ``bits`` (preamble prepended) into a timeline."""
        require_positive(bit_period, "bit_period")
        frame = list(PREAMBLE) + [1 if bit else 0 for bit in bits]
        segments = [
            (bit_period, self.p_high if bit else self.p_low) for bit in frame
        ]
        return PiecewiseActivity.from_segments(segments, start=start)


class PowerCovertReceiver:
    """The CPU-side conspirator: an unprivileged hwmon polling loop."""

    def __init__(
        self,
        sampler: HwmonSampler,
        domain: str = "fpga",
        oversample: int = 4,
    ):
        self.sampler = sampler
        self.domain = domain
        if oversample < 1:
            raise ValueError("oversample must be >= 1")
        self.oversample = int(oversample)

    def _bit_means(
        self, start: float, n_bits: int, bit_period: float
    ) -> np.ndarray:
        """Mean current per bit window (discarding window edges)."""
        update = self.sampler.soc.device(self.domain).update_period
        polls_per_bit = max(self.oversample, int(bit_period / update))
        trace = self.sampler.collect(
            self.domain,
            "current",
            start=start,
            n_samples=n_bits * polls_per_bit,
            poll_hz=polls_per_bit / bit_period,
        )
        values = trace.values.astype(np.float64)
        windows = values.reshape(n_bits, polls_per_bit)
        # Drop the first poll of each window: it may still serve the
        # previous bit's cached conversion.
        if polls_per_bit > 1:
            windows = windows[:, 1:]
        return windows.mean(axis=1)

    def demodulate(
        self, start: float, n_payload_bits: int, bit_period: float
    ) -> List[int]:
        """Recover a payload sent with :class:`PowerCovertSender`.

        The alternating preamble self-calibrates the slicing threshold
        (midpoint of the high/low means), so the receiver needs no
        prior knowledge of the board's idle current.
        """
        total_bits = len(PREAMBLE) + n_payload_bits
        means = self._bit_means(start, total_bits, bit_period)
        preamble_means = means[: len(PREAMBLE)]
        highs = preamble_means[np.array(PREAMBLE, dtype=bool)]
        lows = preamble_means[~np.array(PREAMBLE, dtype=bool)]
        threshold = (highs.mean() + lows.mean()) / 2.0
        payload = means[len(PREAMBLE):]
        return [int(value > threshold) for value in payload]


class CovertChannel:
    """End-to-end channel harness over one simulated SoC."""

    def __init__(
        self,
        soc: Optional[Soc] = None,
        sender: Optional[PowerCovertSender] = None,
        seed: Optional[int] = 0,
    ):
        self.soc = soc if soc is not None else Soc("ZCU102", seed=seed)
        self.sender = sender if sender is not None else PowerCovertSender()
        self.receiver = PowerCovertReceiver(HwmonSampler(self.soc, seed=seed))
        self._clock = 1.0

    def transmit(
        self, bits: Sequence[int], bit_period: float = 0.08
    ) -> ChannelReport:
        """Send ``bits`` across the boundary and report the outcome."""
        bits = tuple(1 if bit else 0 for bit in bits)
        start = self._clock
        frame_seconds = (len(PREAMBLE) + len(bits)) * bit_period
        self._clock += frame_seconds + 1.0
        timeline = self.sender.modulate(bits, bit_period, start=start)
        self.soc.replace_workload("fpga", "covert-sender", timeline)
        received = self.receiver.demodulate(start, len(bits), bit_period)
        self.soc.detach_workload("fpga", "covert-sender")
        return ChannelReport(
            sent=bits, received=tuple(received), bit_period=bit_period
        )

    def capacity_sweep(
        self, bit_periods: Sequence[float], n_bits: int = 64, seed: int = 0
    ) -> List[ChannelReport]:
        """Measure BER/goodput across signaling rates."""
        rng = np.random.default_rng(seed)
        reports = []
        for bit_period in bit_periods:
            bits = rng.integers(0, 2, size=n_bits)
            reports.append(self.transmit(bits, bit_period=bit_period))
        return reports
