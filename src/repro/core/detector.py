"""Victim-activity onset detection from current traces.

Both end-to-end attacks need to know *when* the victim runs: the
fingerprinting attack must trim its trace to the inference window, and
the RSA attack should discard samples collected while the circuit was
idle.  This module provides a simple, dependency-free change-point
detector over hwmon current traces: a rolling baseline with a z-score
trigger, plus helpers to segment a trace into active episodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.traces import Trace
from repro.utils.validation import require_int_in_range, require_positive


@dataclass(frozen=True)
class Episode:
    """One detected activity episode, as sample indices [start, end)."""

    start: int
    end: int

    @property
    def length(self) -> int:
        """Number of samples inside the episode."""
        return self.end - self.start


class OnsetDetector:
    """Rolling-baseline z-score change detector.

    Args:
        baseline_window: samples used to estimate the idle baseline.
        z_threshold: trigger level in baseline standard deviations.
        min_gap: episodes separated by fewer idle samples are merged.
        min_sigma: floor on the baseline deviation (quantized idle
            traces can have zero variance; one LSB is the natural
            floor).
    """

    def __init__(
        self,
        baseline_window: int = 16,
        z_threshold: float = 5.0,
        min_gap: int = 3,
        min_sigma: float = 1.0,
    ):
        self.baseline_window = require_int_in_range(
            baseline_window, 2, 1_000_000, "baseline_window"
        )
        self.z_threshold = require_positive(z_threshold, "z_threshold")
        self.min_gap = require_int_in_range(min_gap, 0, 1_000_000, "min_gap")
        self.min_sigma = require_positive(min_sigma, "min_sigma")

    def estimate_baseline(self, values: np.ndarray) -> Tuple[float, float]:
        """(mean, sigma) of the leading idle window — reusable across
        later recordings (a stakeout loop measures idle once)."""
        values = np.asarray(values, dtype=np.float64)
        if values.size < self.baseline_window:
            raise ValueError(
                f"need at least baseline_window={self.baseline_window} "
                f"samples, got {values.size}"
            )
        window = values[: self.baseline_window]
        return float(window.mean()), float(
            max(window.std(), self.min_sigma)
        )

    def scores(
        self,
        values: np.ndarray,
        baseline: Optional[Tuple[float, float]] = None,
    ) -> np.ndarray:
        """Per-sample z-scores against an idle baseline.

        Without an explicit ``baseline`` the leading
        ``baseline_window`` samples estimate it (so the trace must
        start idle); stakeout loops pass a baseline captured earlier.
        """
        values = np.asarray(values, dtype=np.float64)
        if baseline is None:
            if values.size <= self.baseline_window:
                raise ValueError(
                    f"need more than baseline_window="
                    f"{self.baseline_window} samples, got {values.size}"
                )
            mu, sigma = self.estimate_baseline(values)
        else:
            mu, sigma = baseline
            if sigma <= 0:
                raise ValueError("baseline sigma must be > 0")
        return (values - mu) / sigma

    def active_mask(
        self,
        values: np.ndarray,
        baseline: Optional[Tuple[float, float]] = None,
    ) -> np.ndarray:
        """Boolean mask of samples flagged as victim activity."""
        scores = self.scores(values, baseline=baseline)
        mask = np.abs(scores) >= self.z_threshold
        if baseline is None:
            # Never flag the self-estimated baseline region itself.
            mask[: self.baseline_window] = False
        return mask

    def episodes(
        self,
        values: np.ndarray,
        baseline: Optional[Tuple[float, float]] = None,
    ) -> List[Episode]:
        """Contiguous active episodes, with short gaps bridged."""
        mask = self.active_mask(values, baseline=baseline)
        episodes: List[Episode] = []
        start = None
        gap = 0
        for index, active in enumerate(mask):
            if active:
                if start is None:
                    start = index
                gap = 0
            elif start is not None:
                gap += 1
                if gap > self.min_gap:
                    episodes.append(Episode(start, index - gap + 1))
                    start = None
                    gap = 0
        if start is not None:
            episodes.append(Episode(start, len(mask) - gap))
        return episodes

    def detect_onset(
        self,
        trace: Trace,
        baseline: Optional[Tuple[float, float]] = None,
    ) -> Tuple[bool, float]:
        """Did the victim start, and when (trace timestamp)?

        Returns ``(False, nan)`` when no activity is found.
        """
        found = self.episodes(np.asarray(trace.values), baseline=baseline)
        if not found:
            return False, float("nan")
        return True, float(trace.times[found[0].start])

    def scan_for_onset(
        self,
        chunks: Iterable[Trace],
        baseline: Optional[Tuple[float, float]] = None,
    ) -> Tuple[bool, float]:
        """Watch a chunked stream for the first victim onset.

        Consumes bounded :class:`Trace` chunks (e.g. from
        :meth:`repro.core.sampler.HwmonSampler.stream`) one at a time,
        so a stakeout holds only the current chunk in memory.  Without
        an explicit ``baseline`` the first chunk calibrates the idle
        level, exactly as a real stakeout measures idle once before
        watching; iteration stops at the first detected onset.

        Returns ``(found, onset_time)``; ``(False, nan)`` when the
        stream ends without activity.
        """
        for chunk in chunks:
            if baseline is None:
                baseline = self.estimate_baseline(
                    np.asarray(chunk.values, dtype=np.float64)
                )
            found, onset = self.detect_onset(chunk, baseline=baseline)
            if found:
                return True, onset
        return False, float("nan")

    def trim_to_activity(self, trace: Trace) -> Trace:
        """The sub-trace spanning first to last detected activity.

        Raises :class:`ValueError` when the trace shows no activity —
        callers should treat that as "victim never ran".
        """
        found = self.episodes(np.asarray(trace.values))
        if not found:
            raise ValueError("no victim activity detected in trace")
        start = found[0].start
        end = found[-1].end
        return Trace(
            times=trace.times[start:end],
            values=trace.values[start:end],
            domain=trace.domain,
            quantity=trace.quantity,
            label=trace.label,
        )
