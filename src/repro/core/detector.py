"""Victim-activity onset detection from current traces.

Both end-to-end attacks need to know *when* the victim runs: the
fingerprinting attack must trim its trace to the inference window, and
the RSA attack should discard samples collected while the circuit was
idle.  This module provides a simple, dependency-free change-point
detector over hwmon current traces: a rolling baseline with a z-score
trigger, plus helpers to segment a trace into active episodes.

The detector has two faces over one state machine:

* the **batch** face (:meth:`OnsetDetector.episodes`,
  :meth:`OnsetDetector.detect_onset`) segments a complete trace;
* the **incremental** face (:class:`OnsetTracker`, built by
  :meth:`OnsetDetector.tracker`) consumes a stream chunk by chunk and
  emits :class:`OnsetEvent`\\ s as activity starts and ends.

The batch face is re-expressed on top of the tracker, so feeding a
trace through either face — under any chunking — produces identical
episodes by construction, not by coincidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.traces import Trace
from repro.utils.validation import require_int_in_range, require_positive


@dataclass(frozen=True)
class Episode:
    """One detected activity episode, as sample indices [start, end)."""

    start: int
    end: int

    @property
    def length(self) -> int:
        """Number of samples inside the episode."""
        return self.end - self.start


@dataclass(frozen=True)
class OnsetEvent:
    """One state transition reported by an :class:`OnsetTracker`.

    Attributes:
        kind: ``"baseline"`` when the idle baseline locks in,
            ``"onset"`` when activity starts, ``"episode"`` when an
            activity episode closes (carrying the full episode).
        index: global sample index of the transition (the episode's
            start for onsets; one past its last sample for closes).
        time: the sample's timestamp when the pushed chunks carried
            times, else ``nan``.
        episode: the closed episode for ``"episode"`` events.
    """

    kind: str
    index: int
    time: float = float("nan")
    episode: Optional[Episode] = None


class OnsetTracker:
    """Incremental change-point state machine over a chunked stream.

    Built by :meth:`OnsetDetector.tracker`; consume with
    :meth:`push` per chunk and :meth:`finish` at end of stream.  The
    tracker carries the rolling state a batch scan keeps implicitly —
    the idle baseline (estimated from the first ``baseline_window``
    samples when not given), the open episode, and the gap counter
    that merges nearby episodes — so chunk boundaries are invisible:
    any chunking of the same samples yields the same events.

    Memory is O(``baseline_window``): only the samples needed to
    estimate a pending baseline are buffered, and they are released
    the moment the baseline locks in.
    """

    def __init__(
        self,
        detector: "OnsetDetector",
        baseline: Optional[Tuple[float, float]] = None,
        mask_baseline_region: bool = True,
    ):
        self.detector = detector
        if baseline is not None and baseline[1] <= 0:
            raise ValueError("baseline sigma must be > 0")
        self._baseline = baseline
        self._explicit_baseline = baseline is not None
        # Only a self-estimated baseline region is exempt from
        # triggering (the batch mask zeroes it); an explicit baseline
        # scans every sample, as detect_onset(baseline=...) does.
        self._mask_baseline_region = (
            mask_baseline_region and baseline is None
        )
        self._pending: Optional[np.ndarray] = (
            None if baseline is not None else np.empty(0, dtype=np.float64)
        )
        self._pending_times: Optional[np.ndarray] = (
            None if baseline is not None else np.empty(0, dtype=np.float64)
        )
        self._position = 0  # global samples fully processed
        self._episode_start: Optional[int] = None
        self._episode_start_time = float("nan")
        self._gap = 0

    @property
    def baseline(self) -> Optional[Tuple[float, float]]:
        """The locked-in ``(mean, sigma)`` baseline, if known yet."""
        return self._baseline

    @property
    def samples_seen(self) -> int:
        """Global samples consumed so far (including buffered ones)."""
        if self._pending is not None:
            return self._position + int(self._pending.size)
        return self._position

    def push(
        self,
        values: np.ndarray,
        times: Optional[np.ndarray] = None,
    ) -> List[OnsetEvent]:
        """Consume one chunk; return the events it triggered."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError("values must be one-dimensional")
        if times is not None:
            times = np.asarray(times, dtype=np.float64)
            if times.shape != values.shape:
                raise ValueError("times must match values in length")
        events: List[OnsetEvent] = []
        if values.size == 0:
            return events
        if self._baseline is None:
            self._pending = np.concatenate([self._pending, values])
            if times is not None:
                self._pending_times = np.concatenate(
                    [self._pending_times, times]
                )
            else:
                self._pending_times = np.concatenate(
                    [self._pending_times, np.full(values.size, np.nan)]
                )
            window = self.detector.baseline_window
            if self._pending.size < window:
                return events
            head = self._pending[:window]
            self._baseline = (
                float(head.mean()),
                float(max(head.std(), self.detector.min_sigma)),
            )
            events.append(
                OnsetEvent(
                    kind="baseline",
                    index=window - 1,
                    time=float(self._pending_times[window - 1]),
                )
            )
            buffered = self._pending
            buffered_times = self._pending_times
            self._pending = None
            self._pending_times = None
            if self._mask_baseline_region:
                # The batch mask never flags the self-estimated
                # baseline region; advance past it as all-idle.
                self._advance(
                    np.zeros(window, dtype=bool),
                    buffered_times[:window],
                    events,
                )
                buffered = buffered[window:]
                buffered_times = buffered_times[window:]
            if buffered.size:
                self._advance(
                    self._active_mask(buffered), buffered_times, events
                )
            return events
        mask = self._active_mask(values)
        if times is None:
            times = np.full(values.size, np.nan)
        self._advance(mask, times, events)
        return events

    def finish(self) -> List[OnsetEvent]:
        """Close the stream: flush a still-open trailing episode.

        Mirrors the batch scan's tail handling — an episode open at end
        of data closes at the last *active* sample (trailing idle
        samples shorter than ``min_gap`` are not part of it).
        """
        events: List[OnsetEvent] = []
        if self._episode_start is not None:
            end = self._position - self._gap
            events.append(
                OnsetEvent(
                    kind="episode",
                    index=end,
                    episode=Episode(self._episode_start, end),
                )
            )
            self._episode_start = None
            self._gap = 0
        return events

    # ------------------------------------------------------- internals

    def _active_mask(self, values: np.ndarray) -> np.ndarray:
        mu, sigma = self._baseline
        return np.abs((values - mu) / sigma) >= self.detector.z_threshold

    def _advance(
        self,
        mask: np.ndarray,
        times: np.ndarray,
        events: List[OnsetEvent],
    ) -> None:
        """Run the merge state machine over one chunk's activity mask.

        Sample-for-sample the same loop the batch segmentation ran,
        with the (start, gap) state carried across chunk boundaries.
        """
        min_gap = self.detector.min_gap
        for offset, active in enumerate(mask):
            index = self._position + offset
            if active:
                if self._episode_start is None:
                    self._episode_start = index
                    self._episode_start_time = float(times[offset])
                    events.append(
                        OnsetEvent(
                            kind="onset",
                            index=index,
                            time=float(times[offset]),
                        )
                    )
                self._gap = 0
            elif self._episode_start is not None:
                self._gap += 1
                if self._gap > min_gap:
                    end = index - self._gap + 1
                    events.append(
                        OnsetEvent(
                            kind="episode",
                            index=end,
                            time=float(times[offset]),
                            episode=Episode(self._episode_start, end),
                        )
                    )
                    self._episode_start = None
                    self._gap = 0
        self._position += int(mask.size)


class OnsetDetector:
    """Rolling-baseline z-score change detector.

    Args:
        baseline_window: samples used to estimate the idle baseline.
        z_threshold: trigger level in baseline standard deviations.
        min_gap: episodes separated by fewer idle samples are merged.
        min_sigma: floor on the baseline deviation (quantized idle
            traces can have zero variance; one LSB is the natural
            floor).
    """

    def __init__(
        self,
        baseline_window: int = 16,
        z_threshold: float = 5.0,
        min_gap: int = 3,
        min_sigma: float = 1.0,
    ):
        self.baseline_window = require_int_in_range(
            baseline_window, 2, 1_000_000, "baseline_window"
        )
        self.z_threshold = require_positive(z_threshold, "z_threshold")
        self.min_gap = require_int_in_range(min_gap, 0, 1_000_000, "min_gap")
        self.min_sigma = require_positive(min_sigma, "min_sigma")

    def estimate_baseline(self, values: np.ndarray) -> Tuple[float, float]:
        """(mean, sigma) of the leading idle window — reusable across
        later recordings (a stakeout loop measures idle once)."""
        values = np.asarray(values, dtype=np.float64)
        if values.size < self.baseline_window:
            raise ValueError(
                f"need at least baseline_window={self.baseline_window} "
                f"samples, got {values.size}"
            )
        window = values[: self.baseline_window]
        return float(window.mean()), float(
            max(window.std(), self.min_sigma)
        )

    def scores(
        self,
        values: np.ndarray,
        baseline: Optional[Tuple[float, float]] = None,
    ) -> np.ndarray:
        """Per-sample z-scores against an idle baseline.

        Without an explicit ``baseline`` the leading
        ``baseline_window`` samples estimate it (so the trace must
        start idle); stakeout loops pass a baseline captured earlier.
        """
        values = np.asarray(values, dtype=np.float64)
        if baseline is None:
            if values.size <= self.baseline_window:
                raise ValueError(
                    f"need more than baseline_window="
                    f"{self.baseline_window} samples, got {values.size}"
                )
            mu, sigma = self.estimate_baseline(values)
        else:
            mu, sigma = baseline
            if sigma <= 0:
                raise ValueError("baseline sigma must be > 0")
        return (values - mu) / sigma

    def active_mask(
        self,
        values: np.ndarray,
        baseline: Optional[Tuple[float, float]] = None,
    ) -> np.ndarray:
        """Boolean mask of samples flagged as victim activity."""
        scores = self.scores(values, baseline=baseline)
        mask = np.abs(scores) >= self.z_threshold
        if baseline is None:
            # Never flag the self-estimated baseline region itself.
            mask[: self.baseline_window] = False
        return mask

    def tracker(
        self,
        baseline: Optional[Tuple[float, float]] = None,
        mask_baseline_region: bool = True,
    ) -> OnsetTracker:
        """An incremental :class:`OnsetTracker` with this detector's knobs.

        Without ``baseline`` the tracker calibrates itself from the
        first ``baseline_window`` samples pushed (buffering across
        chunk boundaries if needed); ``mask_baseline_region=False``
        lets even that calibration region trigger, which is the
        stakeout (:meth:`scan_for_onset`) convention.
        """
        return OnsetTracker(
            self, baseline=baseline,
            mask_baseline_region=mask_baseline_region,
        )

    def episodes(
        self,
        values: np.ndarray,
        baseline: Optional[Tuple[float, float]] = None,
    ) -> List[Episode]:
        """Contiguous active episodes, with short gaps bridged.

        Expressed as one :class:`OnsetTracker` push over the whole
        trace, so batch segmentation and chunked streaming share the
        same state machine (and therefore the same episodes).
        """
        values = np.asarray(values, dtype=np.float64)
        if baseline is None and values.size <= self.baseline_window:
            raise ValueError(
                f"need more than baseline_window="
                f"{self.baseline_window} samples, got {values.size}"
            )
        tracker = self.tracker(baseline=baseline)
        events = tracker.push(values)
        events += tracker.finish()
        return [
            event.episode for event in events if event.kind == "episode"
        ]

    def detect_onset(
        self,
        trace: Trace,
        baseline: Optional[Tuple[float, float]] = None,
    ) -> Tuple[bool, float]:
        """Did the victim start, and when (trace timestamp)?

        Returns ``(False, nan)`` when no activity is found.
        """
        found = self.episodes(np.asarray(trace.values), baseline=baseline)
        if not found:
            return False, float("nan")
        return True, float(trace.times[found[0].start])

    def scan_for_onset(
        self,
        chunks: Iterable[Trace],
        baseline: Optional[Tuple[float, float]] = None,
    ) -> Tuple[bool, float]:
        """Watch a chunked stream for the first victim onset.

        Consumes bounded :class:`Trace` chunks (e.g. from
        :meth:`repro.core.sampler.HwmonSampler.stream`) one at a time,
        so a stakeout holds only the current chunk in memory.  Without
        an explicit ``baseline`` the first chunk calibrates the idle
        level, exactly as a real stakeout measures idle once before
        watching; iteration stops at the first detected onset.

        Returns ``(found, onset_time)``; ``(False, nan)`` when the
        stream ends without activity.
        """
        tracker = self.tracker(
            baseline=baseline, mask_baseline_region=False
        )
        for chunk in chunks:
            events = tracker.push(
                np.asarray(chunk.values, dtype=np.float64),
                times=np.asarray(chunk.times, dtype=np.float64),
            )
            for event in events:
                if event.kind == "onset":
                    return True, event.time
        return False, float("nan")

    def trim_to_activity(self, trace: Trace) -> Trace:
        """The sub-trace spanning first to last detected activity.

        Raises :class:`ValueError` when the trace shows no activity —
        callers should treat that as "victim never ran".
        """
        found = self.episodes(np.asarray(trace.values))
        if not found:
            raise ValueError("no victim activity detected in trace")
        start = found[0].start
        end = found[-1].end
        return Trace(
            times=trace.times[start:end],
            values=trace.values[start:end],
            domain=trace.domain,
            quantity=trace.quantity,
            label=trace.label,
        )
